package main

import (
	"strings"
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/obs"
)

func report(results ...harness.BenchResult) *harness.BenchReport {
	return &harness.BenchReport{Config: "test", Results: results}
}

func row(name string, meta int, simd int64) harness.BenchResult {
	return harness.BenchResult{
		Name: name, Width: 16,
		MIMDStates: 4, MetaStates: meta,
		SIMDCycles: simd, MIMDCycles: 50, InterpCycles: 400,
	}
}

func TestDiffWithinToleranceIsClean(t *testing.T) {
	old := report(row("a", 10, 100), row("b", 20, 200))
	cur := report(row("a", 10, 105), row("b", 20, 200)) // +5% < 10%
	regs, _ := diff(old, cur, 10, 0)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestDiffFlagsCycleRegression(t *testing.T) {
	old := report(row("a", 10, 100))
	cur := report(row("a", 10, 115)) // +15% > 10%
	regs, _ := diff(old, cur, 10, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "simd_cycles") {
		t.Fatalf("want one simd_cycles regression, got %v", regs)
	}
}

func TestDiffFlagsStateGrowth(t *testing.T) {
	old := report(row("a", 10, 100))
	cur := report(row("a", 12, 100)) // +20% meta states
	regs, _ := diff(old, cur, 10, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "meta_states") {
		t.Fatalf("want one meta_states regression, got %v", regs)
	}
}

func TestDiffImprovementIsNoteOnly(t *testing.T) {
	old := report(row("a", 10, 100))
	cur := report(row("a", 5, 40))
	regs, notes := diff(old, cur, 10, 0)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
	if len(notes) == 0 {
		t.Fatalf("improvement produced no notes")
	}
}

func TestDiffMissingWorkloadIsRegression(t *testing.T) {
	old := report(row("a", 10, 100), row("gone", 10, 100))
	cur := report(row("a", 10, 100), row("fresh", 10, 100))
	regs, notes := diff(old, cur, 10, 0)
	if len(regs) != 1 || !strings.Contains(regs[0], "gone") {
		t.Fatalf("want missing-workload regression, got %v", regs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "fresh") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new workload not noted: %v", notes)
	}
}

func TestDiffWallTimeWarnsOnly(t *testing.T) {
	slow := row("a", 10, 100)
	slow.Compile = &msc.CompileStats{PhaseWall: []obs.Phase{{Name: "convert", Wall: 10_000_000}}}
	fast := row("a", 10, 100)
	fast.Compile = &msc.CompileStats{PhaseWall: []obs.Phase{{Name: "convert", Wall: 1_000_000}}}
	regs, notes := diff(report(fast), report(slow), 10, 0)
	if len(regs) != 0 {
		t.Fatalf("wall-time swing gated hard: %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "warn-only") {
		t.Fatalf("want one warn-only note, got %v", notes)
	}
}

func TestDiffWallTolGatesHard(t *testing.T) {
	slow := row("a", 10, 100)
	slow.Compile = &msc.CompileStats{PhaseWall: []obs.Phase{{Name: "convert", Wall: 1_050_000}}}
	fast := row("a", 10, 100)
	fast.Compile = &msc.CompileStats{PhaseWall: []obs.Phase{{Name: "convert", Wall: 1_000_000}}}
	// +5% wall: clean at the default, a hard regression at -wall-tol 2.
	if regs, _ := diff(report(fast), report(slow), 10, 0); len(regs) != 0 {
		t.Fatalf("warn-only mode gated hard: %v", regs)
	}
	regs, _ := diff(report(fast), report(slow), 10, 2)
	if len(regs) != 1 || !strings.Contains(regs[0], "compile wall") {
		t.Fatalf("want one wall regression at wall-tol 2, got %v", regs)
	}
	// Within the wall tolerance stays clean.
	if regs, _ := diff(report(fast), report(slow), 10, 6); len(regs) != 0 {
		t.Fatalf("+5%% gated at wall-tol 6: %v", regs)
	}
}

// TestDiffZeroAndAbsentMetrics covers the three degenerate shapes —
// metric in baseline but absent (zero) in the new run, absent in
// baseline but present in the new run, and zero on both sides — for
// both core metrics (zero means "not measured") and gateFromZero
// counters (zero is a legitimate value). None of them may divide by
// zero, silently skip, or read a vanished metric as an improvement.
func TestDiffZeroAndAbsentMetrics(t *testing.T) {
	cases := []struct {
		name      string
		old, cur  harness.BenchResult
		wantRegs  []string // substrings, one per expected regression
		wantNotes []string // substrings that must appear in notes
	}{
		{
			name: "core metric vanishes in new run",
			old:  row("a", 10, 100),
			cur: harness.BenchResult{Name: "a", Width: 16,
				MIMDStates: 4, MetaStates: 10,
				SIMDCycles: 0, MIMDCycles: 50, InterpCycles: 400},
			wantRegs: []string{"simd_cycles", "missing from new report"},
		},
		{
			name: "core metric absent in baseline",
			old: harness.BenchResult{Name: "a", Width: 16,
				MIMDStates: 4, MetaStates: 10,
				SIMDCycles: 0, MIMDCycles: 50, InterpCycles: 400},
			cur:       row("a", 10, 100),
			wantNotes: []string{"simd_cycles baseline is zero"},
		},
		{
			name: "zero on both sides is clean",
			old: harness.BenchResult{Name: "a", Width: 16,
				MIMDStates: 4, MetaStates: 10,
				SIMDCycles: 0, MIMDCycles: 50, InterpCycles: 400},
			cur: harness.BenchResult{Name: "a", Width: 16,
				MIMDStates: 4, MetaStates: 10,
				SIMDCycles: 0, MIMDCycles: 50, InterpCycles: 400},
		},
		{
			name: "gateFromZero counter dropping to zero is an improvement",
			old: func() harness.BenchResult {
				r := row("a", 10, 100)
				r.DegradeSteps = 3
				return r
			}(),
			cur:       row("a", 10, 100),
			wantNotes: []string{"degrade_steps improved 3 -> 0"},
		},
		{
			name: "gateFromZero counter appearing gates hard",
			old:  row("a", 10, 100),
			cur: func() harness.BenchResult {
				r := row("a", 10, 100)
				r.BudgetOverruns = 2
				return r
			}(),
			wantRegs: []string{"budget_overruns", "was zero"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, notes := diff(report(tc.old), report(tc.cur), 10, 0)
			if len(tc.wantRegs) == 0 && len(regs) != 0 {
				t.Fatalf("unexpected regressions: %v", regs)
			}
			if len(tc.wantRegs) > 0 {
				if len(regs) != 1 {
					t.Fatalf("want exactly 1 regression, got %v", regs)
				}
				for _, want := range tc.wantRegs {
					if !strings.Contains(regs[0], want) {
						t.Errorf("regression %q missing %q", regs[0], want)
					}
				}
			}
			for _, want := range tc.wantNotes {
				found := false
				for _, n := range notes {
					if strings.Contains(n, want) {
						found = true
					}
				}
				if !found {
					t.Errorf("notes %v missing %q", notes, want)
				}
			}
		})
	}
}

// TestDiffOneSidedCompileStats: a report missing compile stats on one
// side produces a diagnostic note instead of a silent skip.
func TestDiffOneSidedCompileStats(t *testing.T) {
	withStats := row("a", 10, 100)
	withStats.Compile = &msc.CompileStats{PhaseWall: []obs.Phase{{Name: "convert", Wall: 1_000_000}}}
	without := row("a", 10, 100)

	regs, notes := diff(report(withStats), report(without), 10, 0)
	if len(regs) != 0 {
		t.Fatalf("one-sided compile stats gated hard: %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "new report has no compile stats") {
		t.Fatalf("want one-sided note, got %v", notes)
	}

	regs, notes = diff(report(without), report(withStats), 10, 0)
	if len(regs) != 0 {
		t.Fatalf("one-sided compile stats gated hard: %v", regs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "old report has no compile stats") {
		t.Fatalf("want one-sided note, got %v", notes)
	}
}
