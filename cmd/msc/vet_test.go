package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetGoldens locks the vet diagnostics for every program under
// testdata/vet against golden files: diagnostic text, positions, and
// the exit behavior (nonzero exactly when an error-severity finding
// exists, i.e. for the bad/ programs).
func TestVetGoldens(t *testing.T) {
	root := filepath.Join("..", "..", "testdata", "vet")
	var files []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasSuffix(path, ".mc") {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found %d vet corpus programs, want >= 4", len(files))
	}

	for _, file := range files {
		file := file
		name := strings.TrimSuffix(strings.TrimPrefix(file, root+string(os.PathSeparator)), ".mc")
		t.Run(name, func(t *testing.T) {
			golden, err := os.ReadFile(strings.TrimSuffix(file, ".mc") + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			var out, errBuf bytes.Buffer
			vetErr := vet([]string{file}, &out, &errBuf)

			// Goldens are recorded relative to the repo root.
			got := strings.ReplaceAll(out.String(), "../../", "")
			if got != string(golden) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, golden)
			}
			wantFail := strings.Contains(string(golden), " error [")
			if (vetErr != nil) != wantFail {
				t.Errorf("vet error = %v, want failure=%t", vetErr, wantFail)
			}
		})
	}
}

// TestVetJSON checks the machine-readable output shape.
func TestVetJSON(t *testing.T) {
	file := filepath.Join("..", "..", "testdata", "vet", "bad", "uninit.mc")
	var out, errBuf bytes.Buffer
	vetErr := vet([]string{"-json", file}, &out, &errBuf)
	if vetErr == nil {
		t.Fatal("vet did not fail on a program with an error diagnostic")
	}
	var diags []vetJSON
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics in JSON output")
	}
	d := diags[0]
	if d.File != file || d.Severity != "error" || d.Check != "uninit" || d.Line != 6 {
		t.Errorf("first diagnostic = %+v, want uninit error at line 6 of %s", d, file)
	}
}

// TestVetMultipleFiles checks that one bad file fails the whole
// invocation while clean files still vet silently.
func TestVetMultipleFiles(t *testing.T) {
	clean := filepath.Join("..", "..", "testdata", "vet", "barriers.mc")
	bad := filepath.Join("..", "..", "testdata", "vet", "bad", "deadlock.mc")
	var out, errBuf bytes.Buffer
	if err := vet([]string{clean}, &out, &errBuf); err != nil {
		t.Fatalf("clean file failed vet: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean file produced output: %s", out.String())
	}
	out.Reset()
	if err := vet([]string{clean, bad}, &out, &errBuf); err == nil {
		t.Error("bad file in the list did not fail vet")
	}
	if !strings.Contains(out.String(), "barrier-deadlock") {
		t.Errorf("missing deadlock diagnostic in %s", out.String())
	}
}

// TestVetWerror checks that -werror promotes warning-only runs to a
// nonzero exit while the default invocation stays green.
func TestVetWerror(t *testing.T) {
	src := `
poly int x;
void main()
{
    poly int z;
    z = 0;
    x = 5 / z;
    return;
}
`
	file := filepath.Join(t.TempDir(), "warn.mc")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if err := vet([]string{file}, &out, &errBuf); err != nil {
		t.Fatalf("warnings gated without -werror: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "warning [div-by-zero]") {
		t.Fatalf("expected a div-by-zero warning, got:\n%s", out.String())
	}
	out.Reset()
	if err := vet([]string{"-werror", file}, &out, &errBuf); err == nil {
		t.Fatal("-werror did not fail a warning-only run")
	}
}

// TestVetMissingFile checks the front-end error path: vet reports the
// failure on stderr and exits nonzero without touching stdout.
func TestVetMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := vet([]string{"no-such-file.mc"}, &out, &errBuf); err == nil {
		t.Fatal("vet succeeded on a missing file")
	}
	if errBuf.Len() == 0 {
		t.Error("no error message on stderr")
	}
}
