package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"msc/internal/analysis"
	"msc/internal/cfg"
	"msc/internal/mimdc"
	metastate "msc/internal/msc"
)

// vet implements the `msc vet` subcommand: run the static analyzer
// over one or more MIMDC source files and print the diagnostics as
// "file:line:col: severity [check-id] message" lines (or JSON). The
// exit status is nonzero iff any file fails to compile or produces an
// error-severity diagnostic; warnings and infos never gate unless
// -werror promotes warnings to gate too.
func vet(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("msc vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array")
		exactBar = fs.Bool("exact-barriers", false, "analyze under exact barrier occupancy (§2.6 alternative)")
		werror   = fs.Bool("werror", false, "treat warnings as errors (nonzero exit on any warning)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("usage: msc vet [flags] file.mc...")
	}

	failed := false
	var all []vetJSON
	for _, file := range fs.Args() {
		diags, err := vetFile(file, *exactBar)
		if err != nil {
			// Front-end errors are already positioned "line:col: msg"
			// lines; prefix the file so they read like diagnostics.
			fmt.Fprintf(stderr, "%s: %v\n", file, err)
			failed = true
			continue
		}
		if analysis.HasErrors(diags) {
			failed = true
		}
		if *werror && hasWarnings(diags) {
			failed = true
		}
		if *jsonOut {
			for _, d := range diags {
				all = append(all, vetJSON{
					File:     file,
					Line:     d.Pos.Line,
					Col:      d.Pos.Col,
					Severity: d.Sev.String(),
					Check:    d.Check,
					Msg:      d.Msg,
				})
			}
		} else {
			fmt.Fprint(stdout, analysis.Render(file, diags))
		}
	}
	if *jsonOut {
		if all == nil {
			all = []vetJSON{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("vet failed")
	}
	return nil
}

// hasWarnings reports whether any diagnostic is warning severity.
func hasWarnings(diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == analysis.SevWarning {
			return true
		}
	}
	return false
}

// vetJSON is the -json wire form of one diagnostic.
type vetJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Check    string `json:"check"`
	Msg      string `json:"msg"`
}

// vetFile runs the analyzer over one source file. The CFG checks see
// the raw graph built with in-line call expansion — raw so unreachable
// source code still exists to be reported, expanded so per-call-site
// dataflow is precise — while the automaton checks see what execution
// sees: the simplified graph converted under default options.
func vetFile(file string, exactBarriers bool) ([]analysis.Diagnostic, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	ast, err := mimdc.Parse(string(src))
	if err != nil {
		return nil, err
	}
	if err := mimdc.Analyze(ast); err != nil {
		return nil, err
	}
	g, err := cfg.BuildWith(ast, cfg.Options{ExpandCalls: true})
	if err != nil {
		return nil, err
	}

	sg := g.Clone()
	cfg.Simplify(sg)
	mopt := metastate.DefaultOptions(false)
	mopt.BarrierExact = exactBarriers
	a, err := metastate.Convert(sg, mopt)
	if err != nil {
		// Conversion blow-ups (state-space bound) don't block the
		// CFG-level checks; report what we have.
		return analysis.Analyze(g, nil), nil
	}
	return analysis.Analyze(g, a), nil
}
