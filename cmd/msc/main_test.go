package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliProg = `
poly int x;
void main()
{
    x = iproc % 3;
    if (x) {
        do { x = x - 1; } while (x);
    } else {
        do { x = x + 2; } while (x < 4);
    }
    return;
}
`

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestCLIStats(t *testing.T) {
	path := writeProg(t, cliProg)
	out, _, err := runCLI(t, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MIMD states:", "meta states:", "hashed dispatches:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIEmitVariants(t *testing.T) {
	path := writeProg(t, cliProg)
	cases := map[string]string{
		"graph":     "state 0",
		"dot":       "digraph",
		"automaton": "start: ms0",
		"autodot":   "digraph",
		"mpl":       "globalor",
	}
	for emit, want := range cases {
		out, _, err := runCLI(t, "-emit="+emit, path)
		if err != nil {
			t.Fatalf("-emit=%s: %v", emit, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("-emit=%s output missing %q:\n%s", emit, want, out)
		}
	}
}

func TestCLIRunEngines(t *testing.T) {
	path := writeProg(t, cliProg)
	for engine, want := range map[string]string{
		"simd":   "meta-state SIMD",
		"mimd":   "ideal MIMD reference",
		"interp": "interpreter on SIMD",
	} {
		out, _, err := runCLI(t, "-run", "-compress", "-n", "6", "-engine", engine, path)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !strings.Contains(out, want) || !strings.Contains(out, "x:") {
			t.Errorf("engine %s output unexpected:\n%s", engine, out)
		}
	}
}

func TestCLITrace(t *testing.T) {
	path := writeProg(t, cliProg)
	_, errOut, err := runCLI(t, "-run", "-compress", "-n", "4", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "apc=") {
		t.Errorf("trace output missing:\n%s", errOut)
	}
}

func TestCLIErrors(t *testing.T) {
	if _, _, err := runCLI(t); err == nil {
		t.Error("no-args accepted")
	}
	if _, _, err := runCLI(t, "/nonexistent/file.mc"); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeProg(t, "void main() { undefined = 1; }")
	if _, _, err := runCLI(t, bad); err == nil {
		t.Error("bad program accepted")
	}
	good := writeProg(t, cliProg)
	if _, _, err := runCLI(t, "-emit=nope", good); err == nil {
		t.Error("unknown emit accepted")
	}
	if _, _, err := runCLI(t, "-run", "-engine=nope", good); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestCLIEmitGo(t *testing.T) {
	path := writeProg(t, cliProg)
	out, _, err := runCLI(t, "-compress", "-csi", "-emit=go", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package main", "func run(", "apcOf"} {
		if !strings.Contains(out, want) {
			t.Errorf("-emit=go output missing %q", want)
		}
	}
}

func TestCLITimeline(t *testing.T) {
	path := writeProg(t, cliProg)
	_, errOut, err := runCLI(t, "-run", "-compress", "-n", "3", "-timeline", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "|") || !strings.Contains(errOut, "ms0") {
		t.Errorf("timeline output missing:\n%s", errOut)
	}
}

func TestCLIProfileTable(t *testing.T) {
	path := writeProg(t, cliProg)
	out, _, err := runCLI(t, "profile", "-n", "8", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cycles total", "mean-live", "mean-enab", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
	// The total row must carry 100.0%: every cycle is attributed.
	if !strings.Contains(out, "100.0%") {
		t.Errorf("profile total row missing 100%%:\n%s", out)
	}
}

func TestCLIProfileTop(t *testing.T) {
	path := writeProg(t, cliProg)
	all, _, err := runCLI(t, "profile", "-n", "8", path)
	if err != nil {
		t.Fatal(err)
	}
	top, _, err := runCLI(t, "profile", "-n", "8", "-top", "1", path)
	if err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(top, "\nms"); c != 1 {
		t.Errorf("-top=1 shows %d states, want 1:\n%s", c, top)
	}
	if strings.Count(all, "\nms") <= 1 {
		t.Errorf("full profile shows too few states:\n%s", all)
	}
}

func TestCLIProfileDot(t *testing.T) {
	path := writeProg(t, cliProg)
	out, _, err := runCLI(t, "profile", "-n", "8", "-dot", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "fillcolor=") {
		t.Errorf("profile -dot output not a heatmap:\n%s", out)
	}
	if !strings.Contains(out, "%\"") {
		t.Errorf("profile -dot labels missing percentages:\n%s", out)
	}
}

func TestCLIPprof(t *testing.T) {
	path := writeProg(t, cliProg)
	var out, errb bytes.Buffer
	// 127.0.0.1:0 picks a free port; the server only needs to come up
	// and be torn down cleanly around the compile.
	if err := run([]string{"-pprof", "127.0.0.1:0", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "debug server on http://127.0.0.1:") {
		t.Errorf("pprof banner missing:\n%s", errb.String())
	}
}
