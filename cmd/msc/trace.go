// The `msc trace` subcommand: compile (and optionally run) a program
// with the hierarchical tracer attached, then export the span tree.
//
//	msc trace [-format=chrome|jsonl] [-o=FILE] [-run [-engine=E] [-n=K]] file.mc
//
// The chrome format loads directly into Perfetto (ui.perfetto.dev) or
// chrome://tracing; jsonl is one span per line for ad-hoc tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"msc"
	"msc/internal/telemetry"
)

func trace(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("msc trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	conv := convFlags(fs)
	var (
		format   = fs.String("format", "chrome", "export format: chrome (Perfetto/chrome://tracing) | jsonl (one span per line)")
		out      = fs.String("o", "", "write the trace to this file (default stdout)")
		doRun    = fs.Bool("run", false, "also execute the program so run spans chain under the compile span")
		engine   = fs.String("engine", "simd", "execution engine when -run is set: simd|mimd|interp")
		n        = fs.Int("n", 16, "machine width (number of PEs)")
		active   = fs.Int("active", 0, "PEs initially in main (0 = all; rest wait for spawn)")
		maxSteps = fs.Int("max-steps", 0, "engine step budget; non-terminating programs fail instead of hanging (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("usage: msc trace [flags] file.mc")
	}
	if *format != "chrome" && *format != "jsonl" {
		return fmt.Errorf("unknown -format %q (want chrome or jsonl)", *format)
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	tr := telemetry.NewTracer()
	conf := conv()
	conf.Tracer = tr
	c, err := msc.Compile(string(src), conf)
	if err != nil {
		return err
	}

	if *doRun {
		// Chain the run under the compile root so the exported tree
		// shows the full compile -> phases -> run lifecycle.
		var parent telemetry.SpanID
		for _, s := range tr.Spans() {
			if s.Name == "compile" {
				parent = s.ID
			}
		}
		rc := msc.RunConfig{
			N: *n, InitialActive: *active, MaxSteps: *maxSteps,
			Tracer: tr, TraceParent: parent,
		}
		switch *engine {
		case "simd":
			_, err = c.RunSIMD(rc)
		case "mimd":
			_, err = c.RunMIMD(rc)
		case "interp":
			_, err = c.RunInterp(rc)
		default:
			return fmt.Errorf("unknown -engine %q", *engine)
		}
		if err != nil {
			return err
		}
	}

	w := stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			return err
		}
		w = f
	}
	if *format == "jsonl" {
		err = tr.WriteJSONL(w)
	} else {
		err = tr.WriteChromeTrace(w)
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stderr, "wrote %d spans to %s (%s format)\n", len(tr.Spans()), *out, *format)
	}
	return nil
}
