package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLITraceChrome(t *testing.T) {
	path := writeProg(t, cliProg)
	out, _, err := runCLI(t, "trace", "-compress", "-run", "-n", "4", path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatal("chrome trace has no traceEvents")
	}
	names := map[string]bool{}
	for _, e := range events {
		if m, ok := e.(map[string]any); ok {
			if n, ok := m["name"].(string); ok {
				names[n] = true
			}
		}
	}
	for _, want := range []string{"compile", "phase.convert", "run.simd"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, names)
		}
	}
}

func TestCLITraceJSONLToFile(t *testing.T) {
	path := writeProg(t, cliProg)
	out := filepath.Join(t.TempDir(), "spans.jsonl")
	_, errOut, err := runCLI(t, "trace", "-format", "jsonl", "-o", out, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "wrote ") || !strings.Contains(errOut, "jsonl format") {
		t.Errorf("missing write banner:\n%s", errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sawCompile := false
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if span["name"] == "compile" {
			sawCompile = true
		}
	}
	if !sawCompile {
		t.Error("no compile span in JSONL export")
	}
}

func TestCLITraceErrors(t *testing.T) {
	good := writeProg(t, cliProg)
	if _, _, err := runCLI(t, "trace"); err == nil {
		t.Error("no-args accepted")
	}
	if _, _, err := runCLI(t, "trace", "-format=xml", good); err == nil {
		t.Error("unknown format accepted")
	}
	if _, _, err := runCLI(t, "trace", "-run", "-engine=nope", good); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestCLIProfileFolded(t *testing.T) {
	path := writeProg(t, cliProg)
	out, _, err := runCLI(t, "profile", "-compress", "-n", "8", "-folded", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "simd;ms") {
		t.Fatalf("folded output has no meta-state frames:\n%s", out)
	}
	// Every line must be "stack count".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		i := strings.LastIndex(line, " ")
		if i <= 0 || strings.ContainsAny(line[:i], " \t") {
			t.Fatalf("not a folded-stack line: %q", line)
		}
	}
	// A coarse sampling period still produces output on this workload.
	sampled, _, err := runCLI(t, "profile", "-compress", "-n", "8", "-folded", "-sample-period", "10", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) == 0 {
		t.Error("sampled folded output empty")
	}
}

func TestCLIPprofMetrics(t *testing.T) {
	path := writeProg(t, cliProg)
	var out, errb bytes.Buffer
	if err := run([]string{"-pprof", "127.0.0.1:0", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "Prometheus at /metrics") {
		t.Errorf("metrics banner missing:\n%s", errb.String())
	}
}
