// Command msc is the meta-state converter driver: it compiles a MIMDC
// source file through the full pipeline and either prints one of the
// compilation artifacts or executes the program on a chosen engine.
//
// Usage:
//
//	msc [flags] file.mc
//
// Artifacts (pick one):
//
//	-emit=graph      MIMD state graph (text)
//	-emit=dot        MIMD state graph (Graphviz, Figure 1 style)
//	-emit=automaton  meta-state automaton (text)
//	-emit=autodot    meta-state automaton (Graphviz, Figures 2/5/6 style)
//	-emit=mpl        MPL-like SIMD code (Listing 5 style)
//	-emit=go         standalone Go program executing the automaton
//	-emit=stats      pipeline statistics
//
// Execution:
//
//	-run -n=16 [-active=K] [-engine=simd|mimd|interp]
//	          [-trace] [-timeline]   (simd engine diagnostics on stderr)
//
// Profiling:
//
//	msc profile [-n=16] [-top=K] [-dot] [-folded [-sample-period=P]] file.mc
//
// runs the program on the SIMD engine and prints the per-meta-state
// hot-spot table (visits, cycles, share of total time, mean live and
// enabled PEs); -dot emits a Graphviz heatmap of the automaton instead,
// and -folded emits folded stacks (meta state -> block -> source line)
// for flamegraph.pl or speedscope, sampled every -sample-period cycles.
//
// Tracing:
//
//	msc trace [-format=chrome|jsonl] [-o=FILE] [-run [-engine=E]] file.mc
//
// compiles (and with -run executes) the program with the hierarchical
// tracer attached and exports the span tree: compile -> phases ->
// conversion generations/workers -> engine run. The chrome format loads
// directly into Perfetto or chrome://tracing.
//
// Static analysis:
//
//	msc vet [-json] [-exact-barriers] file.mc...
//
// runs the dataflow checks over the MIMD state graph (use before
// initialization, dead stores, unreachable code, constant conditions)
// and the parallel-safety checks over the meta-state automaton
// (barrier deadlock, termination), printing one diagnostic per line as
// file:line:col: severity [check-id] message. Exits nonzero only on
// error-severity findings. See docs/ANALYSIS.md for the check catalog.
//
// Conversion options mirror the paper: -compress (§2.5), -timesplit
// (§2.4), -exact-barriers (§2.6 alternative), -expand-calls (§2.2),
// -csi (§3.1), -hash (§3.2). -pprof=ADDR serves net/http/pprof, expvar
// (including the live compile metrics), and Prometheus text exposition
// at /metrics for the process lifetime. -cache=DIR fronts the compile
// with the on-disk artifact cache (docs/CACHE.md): a warm hit skips
// the pipeline entirely, and a broken cache only costs a warning.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"msc"
	"msc/internal/ir"
	"msc/internal/obs"
	"msc/internal/simd"
	"msc/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		// API errors already carry the "msc: " prefix; don't double it.
		fmt.Fprintln(os.Stderr, "msc:", strings.TrimPrefix(err.Error(), "msc: "))
		os.Exit(1)
	}
}

// convFlags registers the conversion-option flags on fs and returns a
// function producing the msc.Config they select after parsing.
func convFlags(fs *flag.FlagSet) func() msc.Config {
	var (
		compress = fs.Bool("compress", false, "apply meta-state compression (§2.5)")
		timespl  = fs.Bool("timesplit", false, "apply MIMD-state time splitting (§2.4)")
		exactBar = fs.Bool("exact-barriers", false, "exact barrier occupancy instead of §2.6 filtering")
		expand   = fs.Bool("expand-calls", false, "in-line expand non-recursive calls (§2.2)")
		csi      = fs.Bool("csi", false, "apply common subexpression induction (§3.1)")
		hash     = fs.Bool("hash", false, "encode multiway branches with customized hash functions (§3.2)")
		maxState = fs.Int("max-states", 0, "meta-state space bound (0 = default 65536)")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget per compile attempt (0 = none)")
		degrade  = fs.Bool("degrade", false, "on budget overrun, retry with progressively cheaper settings")
		optLevel = fs.Int("O", 0, "dataflow optimization level: 0 off, 1 one round, 2 fixed point")
		verify   = fs.Bool("verify", false, "run the cross-phase IR verifier between pipeline phases")
	)
	return func() msc.Config {
		return msc.Config{
			Compress:     *compress,
			TimeSplit:    *timespl,
			BarrierExact: *exactBar,
			ExpandCalls:  *expand,
			CSI:          *csi,
			Hash:         *hash,
			MaxStates:    *maxState,
			Limits:       msc.Limits{Deadline: *timeout},
			Degrade:      *degrade,
			Opt:          *optLevel,
			Verify:       *verify,
		}
	}
}

// startDebug starts the pprof/expvar server when addr is non-empty,
// publishes the compile recorder over expvar, and serves its metrics
// registry as Prometheus text at /metrics. The returned closer is
// always safe to call.
func startDebug(addr string, rec *obs.Recorder, stderr io.Writer) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := obs.StartDebugServer(addr)
	if err != nil {
		return func() {}, err
	}
	rec.Publish("msc.compile")
	srv.MountMetrics(rec.Registry())
	fmt.Fprintf(stderr, "debug server on http://%s/debug/pprof/ (expvar at /debug/vars, Prometheus at /metrics)\n", srv.Addr())
	return func() { srv.Close() }, nil
}

// run is the testable driver body.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "profile" {
		return profile(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "vet" {
		return vet(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "trace" {
		return trace(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("msc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	conv := convFlags(fs)
	var (
		emit      = fs.String("emit", "stats", "artifact: graph|dot|automaton|autodot|mpl|go|stats")
		doRun     = fs.Bool("run", false, "execute the program instead of emitting an artifact")
		engine    = fs.String("engine", "simd", "execution engine: simd|mimd|interp")
		n         = fs.Int("n", 16, "machine width (number of PEs)")
		active    = fs.Int("active", 0, "PEs initially in main (0 = all; rest wait for spawn)")
		trace     = fs.Bool("trace", false, "trace meta-state execution (simd engine)")
		timeline  = fs.Bool("timeline", false, "per-PE occupancy timeline (simd engine)")
		maxSteps  = fs.Int("max-steps", 0, "engine step budget; non-terminating programs fail instead of hanging (0 = default)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
		cacheDir  = fs.String("cache", "", "artifact cache directory (empty = compile uncached; see docs/CACHE.md)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("usage: msc [flags] file.mc")
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	conf := conv()
	conf.Metrics = obs.NewRecorder()
	if *cacheDir != "" {
		cc, err := msc.OpenCache(*cacheDir)
		if err != nil {
			// The cache accelerates; it never gates. Warn and compile.
			fmt.Fprintf(stderr, "msc: cache disabled: %v\n", err)
		} else {
			conf.Cache = cc
		}
	}
	closeDebug, err := startDebug(*pprofAddr, conf.Metrics, stderr)
	if err != nil {
		return err
	}
	defer closeDebug()
	c, err := msc.Compile(string(src), conf)
	if err != nil {
		return err
	}

	if *doRun {
		return execute(stdout, stderr, c, *engine, *n, *active, *maxSteps, *trace, *timeline)
	}

	switch *emit {
	case "graph":
		fmt.Fprint(stdout, c.Graph.String())
	case "dot":
		fmt.Fprint(stdout, c.DotStateGraph(fs.Arg(0)))
	case "automaton":
		fmt.Fprint(stdout, c.Automaton.String())
	case "autodot":
		fmt.Fprint(stdout, c.DotAutomaton(fs.Arg(0)))
	case "mpl":
		fmt.Fprint(stdout, c.MPL())
	case "go":
		src, err := c.EmitGo(*n)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, src)
	case "stats":
		stats(stdout, c)
	default:
		return fmt.Errorf("unknown -emit %q", *emit)
	}
	return nil
}

func stats(w io.Writer, c *msc.Compiled) {
	for _, d := range c.Degradations {
		fmt.Fprintf(w, "degraded:           %s (%s budget exceeded in %s)\n", d.Action, d.Resource, d.Phase)
	}
	fmt.Fprintf(w, "MIMD states:        %d\n", c.MIMDStates())
	fmt.Fprintf(w, "meta states:        %d\n", c.MetaStates())
	fmt.Fprintf(w, "transitions:        %d\n", c.Automaton.NumTransitions())
	fmt.Fprintf(w, "max meta width:     %d\n", c.Automaton.MaxWidth())
	fmt.Fprintf(w, "time splits:        %d (restarts %d)\n", c.Automaton.Splits, c.Automaton.Restarts)
	fmt.Fprintf(w, "words per PE:       %d\n", c.Program.Words)
	hashed, static := 0, 0
	for _, mc := range c.Program.Meta {
		if mc.Trans.Hash != nil {
			hashed++
		}
		static += mc.Cost()
	}
	fmt.Fprintf(w, "hashed dispatches:  %d\n", hashed)
	fmt.Fprintf(w, "static cycles:      %d\n", static)
	if s := c.Stats; s != nil {
		if s.CacheOutcome != "" {
			fmt.Fprintf(w, "cache:              %s\n", s.CacheOutcome)
			for _, e := range s.CacheErrors {
				fmt.Fprintf(w, "cache error:        %s\n", e)
			}
		}
		fmt.Fprintf(w, "tokens parsed:      %d\n", s.TokensParsed)
		fmt.Fprintf(w, "cfg blocks:         %d -> %d (simplify)\n", s.BlocksBeforeSimplify, s.BlocksAfterSimplify)
		fmt.Fprintf(w, "meta explored:      %d (merged %d, barrier-filtered %d, worklist peak %d)\n",
			s.MetaExplored, s.MetaMerged, s.AggregatesFiltered, s.WorklistHighWater)
		fmt.Fprintf(w, "CSI saved:          %d cycles, %d slots\n", s.CSISavedCycles, s.CSISlotsSaved)
		fmt.Fprintf(w, "hash search:        %d candidates tried, %d tables built\n",
			s.HashCandidatesTried, s.HashTablesBuilt)
		fmt.Fprintf(w, "dispatch entries:   %d\n", s.DispatchEntries)
		if s.OptRounds > 0 {
			fmt.Fprintf(w, "opt rewrites:       %d const folds, %d dead stores, %d branches pruned, %d copies propagated (%d rounds)\n",
				s.OptConstFolds, s.OptDeadStores, s.OptBranchesPruned, s.OptCopiesPropagated, s.OptRounds)
		}
		fmt.Fprintf(w, "vet diagnostics:    %d (%d errors, %d warnings)\n",
			s.VetDiagnostics, s.VetErrors, s.VetWarnings)
		if s.DegradeSteps > 0 || s.BudgetOverruns > 0 {
			fmt.Fprintf(w, "budget overruns:    %d (degrade steps %d)\n", s.BudgetOverruns, s.DegradeSteps)
		}
		for _, p := range s.PhaseWall {
			fmt.Fprintf(w, "phase %-13s %10.3fms\n", p.Name+":", float64(p.Wall)/1e6)
		}
	}
}

// profile implements the `msc profile` subcommand: run on the SIMD
// engine and report where the cycles went, per meta state.
func profile(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("msc profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	conv := convFlags(fs)
	var (
		n         = fs.Int("n", 16, "machine width (number of PEs)")
		active    = fs.Int("active", 0, "PEs initially in main (0 = all; rest wait for spawn)")
		maxSteps  = fs.Int("max-steps", 0, "engine step budget; non-terminating programs fail instead of hanging (0 = default)")
		top       = fs.Int("top", 0, "show only the hottest K meta states (0 = all)")
		dot       = fs.Bool("dot", false, "emit a Graphviz heatmap of the automaton instead of the table")
		folded    = fs.Bool("folded", false, "emit folded stacks (flamegraph.pl / speedscope input) instead of the table")
		period    = fs.Int64("sample-period", 1, "sampling period in cycles for -folded (1 = exact attribution)")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("usage: msc profile [flags] file.mc")
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	conf := conv()
	conf.Metrics = obs.NewRecorder()
	closeDebug, err := startDebug(*pprofAddr, conf.Metrics, stderr)
	if err != nil {
		return err
	}
	defer closeDebug()
	c, err := msc.Compile(string(src), conf)
	if err != nil {
		return err
	}
	rc := msc.RunConfig{N: *n, InitialActive: *active, MaxSteps: *maxSteps}
	var prof *telemetry.Profiler
	if *folded {
		prof = telemetry.NewProfiler(*period)
		rc.Profiler = prof
	}
	res, err := c.RunSIMD(rc)
	if err != nil {
		return err
	}

	if *folded {
		return prof.WriteFolded(stdout, "simd")
	}
	if *dot {
		fmt.Fprint(stdout, c.DotProfile(fs.Arg(0), res))
		return nil
	}
	return writeProfile(stdout, c, res, *top)
}

// writeProfile prints the hot-spot table, hottest meta state first. The
// cycle column is exact: every cycle of the run is attributed to exactly
// one meta state, so the total row equals the run's Time.
func writeProfile(w io.Writer, c *msc.Compiled, res *simd.Result, top int) error {
	order := make([]int, len(res.MetaStats))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := &res.MetaStats[order[a]], &res.MetaStats[order[b]]
		if sa.Cycles != sb.Cycles {
			return sa.Cycles > sb.Cycles
		}
		return order[a] < order[b]
	})

	var total int64
	for i := range res.MetaStats {
		total += res.MetaStats[i].Cycles
	}
	if total != res.Time {
		return fmt.Errorf("profile: attributed cycles %d != run time %d (attribution bug)", total, res.Time)
	}

	fmt.Fprintf(w, "%d meta-state executions, %d cycles total\n\n", res.MetaExecs, res.Time)
	fmt.Fprintf(w, "%-7s %9s %11s %7s %7s %10s %10s  %s\n",
		"state", "visits", "cycles", "time%", "cum%", "mean-live", "mean-enab", "set")
	var cum int64
	shown := 0
	for _, id := range order {
		st := &res.MetaStats[id]
		if st.Visits == 0 && st.Cycles == 0 {
			continue
		}
		if top > 0 && shown >= top {
			break
		}
		cum += st.Cycles
		pct := func(v int64) float64 {
			if res.Time == 0 {
				return 0
			}
			return 100 * float64(v) / float64(res.Time)
		}
		fmt.Fprintf(w, "ms%-5d %9d %11d %6.1f%% %6.1f%% %10.2f %10.2f  %s\n",
			id, st.Visits, st.Cycles, pct(st.Cycles), pct(cum),
			st.MeanLive(), st.MeanEnabled(), c.Automaton.States[id].Set)
		shown++
	}
	fmt.Fprintf(w, "%-7s %9s %11d %6.1f%%\n", "total", "", total, 100.0)
	return nil
}

func execute(stdout, stderr io.Writer, c *msc.Compiled, engine string, n, active, maxSteps int, trace, timeline bool) error {
	rc := msc.RunConfig{N: n, InitialActive: active, MaxSteps: maxSteps}
	if trace {
		rc.Trace = stderr
	}
	if timeline {
		rc.Timeline = stderr
	}
	switch engine {
	case "simd":
		res, err := c.RunSIMD(rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "engine:          meta-state SIMD\n")
		fmt.Fprintf(stdout, "cycles:          %d (body %d, dispatch %d)\n",
			res.Time, res.BodyCycles, res.DispatchCycles)
		fmt.Fprintf(stdout, "meta states run: %d\n", res.MetaExecs)
		fmt.Fprintf(stdout, "utilization:     %.1f%% (wait fraction %.1f%%)\n",
			res.Utilization(n)*100, res.WaitFraction()*100)
		dumpVars(stdout, c, res.Mem, n)
	case "mimd":
		res, err := c.RunMIMD(rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "engine:          ideal MIMD reference\n")
		fmt.Fprintf(stdout, "cycles:          %d (useful %d, barriers %d)\n", res.Time, res.Useful, res.Barriers)
		dumpVars(stdout, c, res.Mem, n)
	case "interp":
		res, err := c.RunInterp(rc)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "engine:          MIMD interpreter on SIMD (§1.1 baseline)\n")
		fmt.Fprintf(stdout, "cycles:          %d (overhead %d)\n", res.Time, res.Overhead)
		fmt.Fprintf(stdout, "rounds:          %d (%.2f instruction types/round)\n",
			res.Rounds, float64(res.TypesPerRound)/float64(res.Rounds))
		fmt.Fprintf(stdout, "program memory:  %d words per PE\n", res.ProgWordsPerPE)
		dumpVars(stdout, c, res.Mem, n)
	default:
		return fmt.Errorf("unknown -engine %q", engine)
	}
	return nil
}

// dumpVars prints every source-level global across the machine.
func dumpVars(w io.Writer, c *msc.Compiled, mem [][]ir.Word, n int) {
	names := make([]string, 0, len(c.Graph.VarSlot))
	for name := range c.Graph.VarSlot {
		names = append(names, name)
	}
	sort.Strings(names)
	show := n
	if show > 16 {
		show = 16
	}
	for _, name := range names {
		slot := c.Graph.VarSlot[name]
		fmt.Fprintf(w, "%-12s", name+":")
		for pe := 0; pe < show; pe++ {
			fmt.Fprintf(w, " %6d", mem[pe][slot])
		}
		if show < n {
			fmt.Fprintf(w, " ... (%d more)", n-show)
		}
		fmt.Fprintln(w)
	}
}
