// Command mscload hammers a running mscd with randomized compile
// requests and checks the service's behavior under load: every request
// carries an expectation (a valid progen program must compile 200, a
// corrupted one must be rejected 400 with kind "invalid", a
// deliberately tiny budget must come back 429 with kind "budget"), and
// the run fails on any 5xx, transport error, or expectation mismatch.
// Backpressure (429 "overloaded") is retried with backoff and is not a
// failure — it is the admission queue doing its job.
//
// While the load runs, /statusz is polled for goroutine and RSS
// ceilings, so a leak shows up as a monotonically climbing ceiling in
// the report.
//
// Usage:
//
//	mscload [-addr host:port | -addr-file PATH] [-n 2000] [-c 64]
//	        [-seed 1] [-invalid 10] [-overbudget 10] [-dup 0]
//	        [-min-hit-ratio 0]
//
// -invalid, -overbudget, and -dup are percentages of the request mix.
// -dup requests draw their source from a small fixed pool, so a server
// running with -cache-dir serves most of them from the artifact cache;
// -min-hit-ratio asserts the server-side cache hit ratio
// (hits/(hits+misses) from /statusz) at the end of the run, failing
// the run when the cache underdelivers — or when the server reports no
// cache at all. The exit code is 0 only for a fully clean run; the
// summary reports p50/p99/max latency and the taxonomy counts either
// way.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msc"
	"msc/internal/progen"
)

func main() {
	os.Exit(run())
}

type result struct {
	latency    time.Duration
	status     int
	kind       string // taxonomy kind from the error body, "" on 200
	expected   string // "ok", "invalid", "budget", "dup"
	metaStates int    // from a 200 body, for the budget expectation
	err        error  // transport failure
}

func run() int {
	addr := flag.String("addr", "", "mscd address (host:port)")
	addrFile := flag.String("addr-file", "", "read the address from this file (written by mscd -addr-file)")
	n := flag.Int("n", 2000, "total requests")
	c := flag.Int("c", 64, "concurrent clients")
	seed := flag.Int64("seed", 1, "base seed for the request mix (fixed seed = reproducible run)")
	invalidPct := flag.Int("invalid", 10, "percent of requests with corrupted source (expect 400)")
	overPct := flag.Int("overbudget", 10, "percent of requests with a tiny state budget (expect 429)")
	dupPct := flag.Int("dup", 0, "percent of requests drawn from a small fixed source pool (cache-hit fodder)")
	minHitRatio := flag.Float64("min-hit-ratio", 0, "fail unless the server's cache hit ratio reaches this (0 = no assertion)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	flag.Parse()

	log.SetPrefix("mscload: ")
	log.SetFlags(0)

	base, err := resolveAddr(*addr, *addrFile)
	if err != nil {
		log.Print(err)
		return 2
	}
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *c,
			MaxIdleConnsPerHost: *c,
		},
	}

	// Poll /statusz for goroutine/RSS ceilings while the load runs.
	var maxGoroutines, maxRSS atomic.Int64
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-pollDone:
				return
			case <-tick.C:
				if st, err := fetchStatus(client, base); err == nil {
					if g := int64(st.Goroutines); g > maxGoroutines.Load() {
						maxGoroutines.Store(g)
					}
					if st.RSSBytes > maxRSS.Load() {
						maxRSS.Store(st.RSSBytes)
					}
				}
			}
		}
	}()

	results := make([]result, *n)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	mix := mixConfig{invalidPct: *invalidPct, overPct: *overPct, dupPct: *dupPct}
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = oneRequest(client, base, *seed, i, mix)
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)
	close(pollDone)
	pollWG.Wait()

	code := report(results, wall, maxGoroutines.Load(), maxRSS.Load())
	if err := assertHitRatio(client, base, *minHitRatio); err != nil {
		fmt.Printf("FAIL: %v\n", err)
		code = 1
	}
	return code
}

// assertHitRatio reads the server's cache counters from /statusz and
// fails when the hit ratio falls short of min. Single-flight shares
// count as hits: a deduplicated compile was served without running the
// pipeline, which is what the ratio is meant to measure.
func assertHitRatio(client *http.Client, base string, min float64) error {
	if min <= 0 {
		return nil
	}
	st, err := fetchStatus(client, base)
	if err != nil {
		return fmt.Errorf("min-hit-ratio: statusz unreachable: %v", err)
	}
	if st.Cache == nil {
		return fmt.Errorf("min-hit-ratio %.2f asserted but the server reports no cache (mscd -cache-dir not set?)", min)
	}
	served := st.Cache.Hits + st.Cache.SingleFlightShared
	total := served + st.Cache.Misses
	if total == 0 {
		return fmt.Errorf("min-hit-ratio: cache saw no lookups")
	}
	ratio := float64(served) / float64(total)
	fmt.Printf("cache: hits=%d shared=%d misses=%d errors=%d ratio=%.3f (want >= %.3f)\n",
		st.Cache.Hits, st.Cache.SingleFlightShared, st.Cache.Misses, st.Cache.Errors, ratio, min)
	if ratio < min {
		return fmt.Errorf("cache hit ratio %.3f below required %.3f", ratio, min)
	}
	return nil
}

func resolveAddr(addr, addrFile string) (string, error) {
	if addr == "" && addrFile == "" {
		return "", fmt.Errorf("one of -addr or -addr-file is required")
	}
	if addr == "" {
		b, err := os.ReadFile(addrFile)
		if err != nil {
			return "", err
		}
		addr = strings.TrimSpace(string(b))
	}
	return "http://" + addr, nil
}

// mixConfig is the request-mix percentages.
type mixConfig struct {
	invalidPct, overPct, dupPct int
}

// dupPoolSize is how many distinct sources the "dup" class cycles
// through: small enough that a cached server hits on nearly all of
// them, large enough to exercise more than one cache entry.
const dupPoolSize = 4

// classify decides request i's shape from the fixed seed: the mix is a
// pure function of (seed, i), so a failing request is reproducible by
// rerunning with the same flags.
func classify(seed int64, i int, mix mixConfig) string {
	rng := rand.New(rand.NewSource(seed + int64(i)*2654435761))
	roll := rng.Intn(100)
	switch {
	case roll < mix.invalidPct:
		return "invalid"
	case roll < mix.invalidPct+mix.overPct:
		return "budget"
	case roll < mix.invalidPct+mix.overPct+mix.dupPct:
		return "dup"
	default:
		return "ok"
	}
}

// buildRequest produces the request body and its expectation. "dup"
// requests compile like "ok" ones but draw from the fixed source pool,
// so a cache-enabled server serves them from the artifact store.
func buildRequest(seed int64, i int, mix mixConfig) (body []byte, expected string) {
	expected = classify(seed, i, mix)
	srcSeed := seed + int64(i)
	floats := i%3 == 0
	if expected == "dup" {
		srcSeed = seed + int64(i%dupPoolSize)
		floats = (i % dupPoolSize % 3) == 0
	}
	src := progen.Source(progen.Params{
		Seed: srcSeed, Barriers: true, Floats: floats,
		MaxDepth: 3, MaxStmts: 5, Vars: 4, LoopTrip: 3,
	})
	req := msc.CompileRequest{Source: src}
	switch expected {
	case "invalid":
		// Corrupt the source so it cannot parse: unbalance the braces.
		req.Source = strings.Replace(src, "{", "(", 1)
	case "budget":
		req.Limits = &msc.WireLimits{MaxStates: 1}
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err) // request shapes are static; this cannot fail
	}
	return b, expected
}

// Overload-retry backoff: exponential from backoffBase, doubled per
// attempt, capped at backoffCap, with ±50% jitter drawn from the
// request's own seeded RNG — retrying clients decorrelate instead of
// stampeding the admission queue in lockstep, and a fixed seed still
// reproduces the exact sleep sequence.
const (
	backoffBase = 10 * time.Millisecond
	backoffCap  = 640 * time.Millisecond
)

func backoff(rng *rand.Rand, attempt int) time.Duration {
	d := backoffBase
	for a := 0; a < attempt && d < backoffCap; a++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	// Jitter uniformly over [d/2, 3d/2).
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

func oneRequest(client *http.Client, base string, seed int64, i int, mix mixConfig) result {
	body, expected := buildRequest(seed, i, mix)
	rng := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))
	var res result
	res.expected = expected
	for attempt := 0; ; attempt++ {
		start := time.Now()
		resp, err := client.Post(base+"/compile", "application/json", bytes.NewReader(body))
		res.latency = time.Since(start)
		if err != nil {
			res.err = err
			return res
		}
		rb, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			res.err = err
			return res
		}
		res.status = resp.StatusCode
		if resp.StatusCode == http.StatusOK {
			var cr msc.CompileResponse
			if err := json.Unmarshal(rb, &cr); err != nil {
				res.err = fmt.Errorf("non-JSON 200 body: %.120s", rb)
				return res
			}
			res.metaStates = cr.MetaStates
		}
		if resp.StatusCode != http.StatusOK {
			var eb msc.ErrorBody
			if err := json.Unmarshal(rb, &eb); err != nil {
				res.err = fmt.Errorf("non-JSON error body (status %d): %.120s", resp.StatusCode, rb)
				return res
			}
			res.kind = eb.Error
			// Backpressure is not an outcome, it is a request to slow
			// down: honor it a few times before giving up.
			if eb.Error == "overloaded" && attempt < 5 {
				time.Sleep(backoff(rng, attempt))
				continue
			}
		}
		return res
	}
}

type serviceStatus struct {
	Goroutines int   `json:"goroutines"`
	RSSBytes   int64 `json:"rss_bytes"`
	Cache      *struct {
		Hits               int64 `json:"hits"`
		Misses             int64 `json:"misses"`
		Errors             int64 `json:"errors"`
		SingleFlightShared int64 `json:"singleflight_shared"`
	} `json:"cache"`
}

func fetchStatus(client *http.Client, base string) (serviceStatus, error) {
	var st serviceStatus
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// latencies using nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func report(results []result, wall time.Duration, maxGoroutines, maxRSS int64) int {
	var latencies []time.Duration
	statusCount := map[int]int{}
	kindCount := map[string]int{}
	var transport, mismatch, server5xx, backpressure int

	for i := range results {
		r := &results[i]
		if r.err != nil {
			transport++
			if transport <= 5 {
				log.Printf("transport error: %v", r.err)
			}
			continue
		}
		latencies = append(latencies, r.latency)
		statusCount[r.status]++
		if r.kind != "" {
			kindCount[r.kind]++
		}
		if r.status >= 500 {
			server5xx++
			if server5xx <= 5 {
				log.Printf("5xx: status %d kind %q (expected %s)", r.status, r.kind, r.expected)
			}
			continue
		}
		ok := false
		switch r.expected {
		case "ok", "dup":
			ok = r.status == 200
		case "invalid":
			ok = r.status == 400 && r.kind == "invalid"
		case "budget":
			// A program that genuinely fits in one meta state does not
			// exceed max_states=1; a 200 is then the correct answer.
			ok = (r.status == 429 && r.kind == "budget") ||
				(r.status == 200 && r.metaStates <= 1)
		}
		if !ok && r.kind == "overloaded" {
			// Still overloaded after retries: backpressure, not a bug.
			backpressure++
			ok = true
		}
		if !ok {
			mismatch++
			if mismatch <= 5 {
				log.Printf("expectation mismatch: expected %s, got status %d kind %q", r.expected, r.status, r.kind)
			}
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("mscload: %d requests in %v (%.0f req/s)\n",
		len(results), wall.Round(time.Millisecond), float64(len(results))/wall.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("latency: p50=%v p99=%v max=%v\n",
			percentile(latencies, 50).Round(time.Microsecond),
			percentile(latencies, 99).Round(time.Microsecond),
			latencies[len(latencies)-1].Round(time.Microsecond))
	}
	var statuses []int
	for s := range statusCount {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Printf("status %d: %d\n", s, statusCount[s])
	}
	var kinds []string
	for k := range kindCount {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("kind %s: %d\n", k, kindCount[k])
	}
	fmt.Printf("backpressure (still overloaded after retries): %d\n", backpressure)
	fmt.Printf("ceilings: goroutines=%d rss=%dMiB\n", maxGoroutines, maxRSS>>20)

	if transport > 0 || server5xx > 0 || mismatch > 0 {
		fmt.Printf("FAIL: transport=%d 5xx=%d mismatches=%d\n", transport, server5xx, mismatch)
		return 1
	}
	fmt.Println("ok: zero 5xx, zero transport errors, all expectations met")
	return 0
}
