package main

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"msc"
)

func TestPercentileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, ms(5)},
		{99, ms(10)},
		{100, ms(10)},
		{1, ms(1)},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestClassifyIsDeterministicAndMixed(t *testing.T) {
	mix := mixConfig{invalidPct: 10, overPct: 10, dupPct: 20}
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		a := classify(42, i, mix)
		b := classify(42, i, mix)
		if a != b {
			t.Fatalf("classify not deterministic at i=%d: %s vs %s", i, a, b)
		}
		counts[a]++
	}
	// The mix is random but 1000 draws at >=10% each cannot plausibly
	// miss a class entirely.
	for _, class := range []string{"ok", "invalid", "budget", "dup"} {
		if counts[class] == 0 {
			t.Errorf("class %s absent from 1000 draws: %v", class, counts)
		}
	}
	if counts["ok"] < 400 {
		t.Errorf("valid share too small: %v", counts)
	}
}

func TestBuildRequestShapes(t *testing.T) {
	mix := mixConfig{invalidPct: 10, overPct: 10, dupPct: 20}
	for i := 0; i < 200; i++ {
		body, expected := buildRequest(7, i, mix)
		var req msc.CompileRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("request %d not JSON: %v", i, err)
		}
		switch expected {
		case "invalid":
			// The corruption must actually unbalance the source.
			if strings.Count(req.Source, "{") == strings.Count(req.Source, "}") {
				t.Errorf("request %d: invalid source still balanced", i)
			}
		case "budget":
			if req.Limits == nil || req.Limits.MaxStates != 1 {
				t.Errorf("request %d: budget request carries no tiny limit: %+v", i, req.Limits)
			}
		case "ok", "dup":
			if req.Limits != nil {
				t.Errorf("request %d: valid request carries limits", i)
			}
			if _, err := msc.Compile(req.Source, msc.DefaultConfig()); err != nil {
				t.Errorf("request %d: valid source does not compile: %v", i, err)
			}
		}
	}
}

// Dup requests must collapse onto the fixed source pool: far fewer
// distinct bodies than dup requests, so a cache-enabled server serves
// the repeats from the store.
func TestBuildRequestDupPool(t *testing.T) {
	mix := mixConfig{dupPct: 100}
	bodies := map[string]int{}
	const n = 200
	for i := 0; i < n; i++ {
		body, expected := buildRequest(7, i, mix)
		if expected != "dup" {
			t.Fatalf("request %d: expected dup with dupPct=100, got %q", i, expected)
		}
		bodies[string(body)]++
	}
	if len(bodies) > dupPoolSize {
		t.Fatalf("%d dup requests produced %d distinct bodies, want <= %d", n, len(bodies), dupPoolSize)
	}
	for body, count := range bodies {
		if count < 2 {
			t.Errorf("pool body drawn only once (%d bodies total): %.60q", len(bodies), body)
		}
	}
}

// The backoff schedule is driven entirely by the caller's RNG, so a
// fixed seed must reproduce the exact same sleep sequence.
func TestBackoffDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 0; attempt < 10; attempt++ {
		da, db := backoff(a, attempt), backoff(b, attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
	}
}

// Every draw lands in [d/2, 3d/2) where d = base·2^attempt capped at
// backoffCap.
func TestBackoffBoundsAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 12; attempt++ {
		want := backoffBase << attempt
		if want > backoffCap {
			want = backoffCap
		}
		for draw := 0; draw < 200; draw++ {
			d := backoff(rng, attempt)
			if d < want/2 || d >= want+want/2 {
				t.Fatalf("attempt %d: %v outside [%v, %v)", attempt, d, want/2, want+want/2)
			}
		}
	}
}

// Even an absurd attempt count never sleeps longer than 3/2 the cap —
// the doubling loop must not overflow its way past the ceiling.
func TestBackoffCapAtLargeAttempts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, attempt := range []int{20, 63, 1000} {
		if d := backoff(rng, attempt); d >= backoffCap+backoffCap/2 {
			t.Fatalf("attempt %d: %v exceeds jittered cap %v", attempt, d, backoffCap+backoffCap/2)
		}
	}
}

// The exponential schedule grows until the cap: the minimum possible
// sleep at attempt k+1 exceeds attempt k's minimum while below it.
func TestBackoffGrows(t *testing.T) {
	prev := time.Duration(0)
	for attempt := 0; attempt < 7; attempt++ { // 10ms..640ms
		lo := (backoffBase << attempt) / 2
		if lo <= prev {
			t.Fatalf("attempt %d: floor %v did not grow past %v", attempt, lo, prev)
		}
		prev = lo
	}
}
