package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"msc"
)

func TestPercentileNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, ms(5)},
		{99, ms(10)},
		{100, ms(10)},
		{1, ms(1)},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
}

func TestClassifyIsDeterministicAndMixed(t *testing.T) {
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		a := classify(42, i, 10, 10)
		b := classify(42, i, 10, 10)
		if a != b {
			t.Fatalf("classify not deterministic at i=%d: %s vs %s", i, a, b)
		}
		counts[a]++
	}
	// The mix is random but 1000 draws at 10% each cannot plausibly
	// miss a class entirely.
	for _, class := range []string{"ok", "invalid", "budget"} {
		if counts[class] == 0 {
			t.Errorf("class %s absent from 1000 draws: %v", class, counts)
		}
	}
	if counts["ok"] < 600 {
		t.Errorf("valid share too small: %v", counts)
	}
}

func TestBuildRequestShapes(t *testing.T) {
	for i := 0; i < 200; i++ {
		body, expected := buildRequest(7, i, 10, 10)
		var req msc.CompileRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("request %d not JSON: %v", i, err)
		}
		switch expected {
		case "invalid":
			// The corruption must actually unbalance the source.
			if strings.Count(req.Source, "{") == strings.Count(req.Source, "}") {
				t.Errorf("request %d: invalid source still balanced", i)
			}
		case "budget":
			if req.Limits == nil || req.Limits.MaxStates != 1 {
				t.Errorf("request %d: budget request carries no tiny limit: %+v", i, req.Limits)
			}
		case "ok":
			if req.Limits != nil {
				t.Errorf("request %d: valid request carries limits", i)
			}
			if _, err := msc.Compile(req.Source, msc.DefaultConfig()); err != nil {
				t.Errorf("request %d: valid source does not compile: %v", i, err)
			}
		}
	}
}
