package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "F5"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F5") || !strings.Contains(out.String(), "Measured: 2") {
		t.Fatalf("F5 output unexpected:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "Z9"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var out, errb bytes.Buffer
	// A single cheap experiment with header keeps the test fast.
	if err := run([]string{"-run", "F1", "-header", "-o", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# EXPERIMENTS") || !strings.Contains(string(data), "## F1") {
		t.Fatalf("report file unexpected:\n%s", data)
	}
}

func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-json", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			Name            string  `json:"name"`
			SIMDCycles      int64   `json:"simd_cycles"`
			InterpCycles    int64   `json:"interp_cycles"`
			SpeedupVsInterp float64 `json:"speedup_vs_interp"`
			Compile         *struct {
				MetaStates int64 `json:"meta_states"`
			} `json:"compile"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Results) < 8 {
		t.Fatalf("got %d workloads, want >= 8", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.SIMDCycles <= 0 || r.InterpCycles <= 0 {
			t.Errorf("%s: non-positive cycle counts: simd=%d interp=%d", r.Name, r.SIMDCycles, r.InterpCycles)
		}
		if r.SpeedupVsInterp <= 1 {
			t.Errorf("%s: speedup vs interp %.2f, want > 1", r.Name, r.SpeedupVsInterp)
		}
		if r.Compile == nil || r.Compile.MetaStates <= 0 {
			t.Errorf("%s: compile metrics missing", r.Name)
		}
	}
}
