package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "F5"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F5") || !strings.Contains(out.String(), "Measured: 2") {
		t.Fatalf("F5 output unexpected:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-run", "Z9"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var out, errb bytes.Buffer
	// A single cheap experiment with header keeps the test fast.
	if err := run([]string{"-run", "F1", "-header", "-o", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# EXPERIMENTS") || !strings.Contains(string(data), "## F1") {
		t.Fatalf("report file unexpected:\n%s", data)
	}
}
