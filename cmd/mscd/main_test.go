package main

import (
	"testing"

	"msc"
)

func TestFinalStatusDecodes(t *testing.T) {
	svc := msc.NewCompileService(msc.ServiceConfig{Workers: 1})
	defer svc.Close()
	st := finalStatus(svc)
	if st.Workers != 1 {
		t.Errorf("statusz workers = %d, want 1", st.Workers)
	}
	if st.Goroutines < 1 {
		t.Errorf("statusz goroutines = %d", st.Goroutines)
	}
}
