// Command mscd serves meta-state conversion as an HTTP service: POST
// MIMDC source to /compile, get the compiled automaton (optionally
// executed) as JSON, with the compile error taxonomy mapped to typed
// error bodies and HTTP statuses. See docs/SERVICE.md for the API.
//
// The daemon is a thin shell around msc.CompileService: it adds the
// listener, flags, the /debug/pprof and /debug/vars mounts, and signal
// handling. SIGTERM/SIGINT starts a graceful drain — stop admitting,
// finish in-flight compiles, then shut the listener down — bounded by
// -drain. The exit code reports whether the drain was clean (0), was
// forced to cancel in-flight work (1), or left goroutines behind (1,
// checked with the faultinject leak checker).
//
// Usage:
//
//	mscd [-addr :8377] [-workers N] [-queue N] [-deadline 10s]
//	     [-max-states N] [-drain 15s] [-addr-file PATH] [-cache-dir DIR]
//
// -cache-dir enables the on-disk artifact cache (docs/CACHE.md):
// identical compile requests are served from the content-addressed
// store, concurrent identical compiles are deduplicated, and cache
// counters appear on /metrics and /statusz. A cache that fails to open
// is logged and the daemon serves uncached — the cache never gates
// availability.
//
// -addr-file writes the bound address (useful with -addr 127.0.0.1:0)
// so scripts can wait for the file instead of parsing logs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"syscall"
	"time"

	"msc"
	"msc/internal/faultinject"
	"msc/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8377", "listen address (use 127.0.0.1:0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "concurrent compile workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 4x workers)")
	deadline := flag.Duration("deadline", 10*time.Second, "per-compile wall-clock ceiling (0 = none)")
	maxStates := flag.Int("max-states", 0, "per-compile meta-state ceiling (0 = none)")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	drain := flag.Duration("drain", 15*time.Second, "graceful drain bound on SIGTERM/SIGINT")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (empty = compile uncached)")
	flag.Parse()

	log.SetPrefix("mscd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	// Register the signal handler before the leak baseline: os/signal
	// starts a process-lifetime watcher goroutine on first use, which
	// must not read as a leak of ours.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	// Baseline for the post-drain self-check, taken before any serving
	// goroutine exists.
	leak := faultinject.LeakCheckWithin(5 * time.Second)

	var cc *msc.Cache
	if *cacheDir != "" {
		opened, err := msc.OpenCache(*cacheDir)
		if err != nil {
			// Graceful degradation at boot: a broken cache directory must
			// not keep the service down.
			log.Printf("cache disabled (%v); serving uncached", err)
		} else {
			cc = opened
			log.Printf("artifact cache at %s (%d entries)", *cacheDir, cc.Stats().Entries)
		}
	}

	svc := msc.NewCompileService(msc.ServiceConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		DefaultLimits: msc.Limits{
			Deadline:  *deadline,
			MaxStates: *maxStates,
		},
		MaxSourceBytes: *maxBody,
		DrainGrace:     5 * time.Second,
		Cache:          cc,
	})

	mux := http.NewServeMux()
	mux.Handle("/", svc)
	obs.MountDebug(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 2
	}
	if *addrFile != "" {
		// Write-then-rename so a waiting script never reads a partial
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Print(err)
			return 2
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Print(err)
			return 2
		}
		defer os.Remove(*addrFile)
	}

	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	boot := finalStatus(svc)
	log.Printf("listening on %s (%d workers, queue %d, deadline %v)",
		ln.Addr(), boot.Workers, boot.QueueDepth, *deadline)

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Printf("serve: %v", err)
		return 2
	}
	stop()

	log.Printf("draining (bound %v)", *drain)
	code := 0
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
		code = 1
	}
	// The service is drained; now close the listener and any idle or
	// lingering connections.
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("shutdown: %v", err)
		srv.Close()
	}
	svc.Close()

	// Self-check: a clean drain leaves no compile or connection
	// goroutines behind.
	if err := leak(); err != nil {
		log.Printf("goroutine leak after drain: %v", err)
		code = 1
	}
	st := finalStatus(svc)
	log.Printf("drained: served=%d 2xx=%d 4xx=%d 5xx=%d rejected=%d goroutines=%d",
		st.Served, st.Status2xx, st.Status4xx, st.Status5xx, st.Rejected, st.Goroutines)
	if st.Cache != nil {
		log.Printf("cache: hits=%d misses=%d errors=%d quarantined=%d shared=%d entries=%d",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Errors, st.Cache.Quarantined,
			st.Cache.SingleFlightShared, st.Cache.Entries)
	}
	if code == 0 {
		log.Print("clean exit")
	}
	return code
}

// finalStatus reads /statusz in-process for the exit log.
func finalStatus(svc *msc.CompileService) msc.ServiceStatus {
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, httptest.NewRequest("GET", "/statusz", nil))
	var st msc.ServiceStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		log.Printf("statusz: %v", err)
	}
	return st
}
