package msc_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"msc"
	"msc/internal/harness"
	"msc/internal/progen"
	"msc/internal/simd"
)

// This file is the vectorized VM's differential gate: the struct-of-
// arrays, mask-driven, chunk-striped engine must produce a byte-
// identical Result to the retired per-PE reference implementation
// (simd.ReferenceRun) on the whole committed corpus and a fixed fleet
// of generated programs, at every width and worker count. Any
// divergence — a memory word, a cycle count, a histogram bucket, an
// error string — is a vectorization bug by definition.

// vecWorkers is the worker-count sweep: sequential, a fixed parallel
// fan-out, and the GOMAXPROCS default. On a single-core runner 0
// resolves to 1; the fixed 4 still drives the chunk pool, claim
// cursor, and per-chunk buffer replay.
func vecWorkers() []int { return []int{1, 4, 0} }

// vecDiff runs src on the reference VM and on the vectorized VM at
// every worker count, and requires identical Results (every field,
// deeply) or identical error text.
func vecDiff(t *testing.T, name, src string, n, initialActive int) {
	t.Helper()
	c, err := msc.Compile(src, msc.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	conf := simd.Config{N: n, InitialActive: initialActive}
	want, wantErr := simd.ReferenceRun(c.Program, conf)
	for _, w := range vecWorkers() {
		wconf := conf
		wconf.Workers = w
		got, gotErr := simd.Run(c.Program, wconf)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("%s@%d workers=%d: reference err=%v, vectorized err=%v",
				name, n, w, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s@%d workers=%d: error text diverged:\nreference:  %s\nvectorized: %s",
					name, n, w, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s@%d workers=%d: Result diverged:\n%s",
				name, n, w, diffResults(want, got))
		}
	}
}

// diffResults names the first diverging Result field so a failure
// reads as "Time: 120 vs 124", not two megabyte dumps.
func diffResults(a, b *simd.Result) string {
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	typ := av.Type()
	for i := 0; i < typ.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			return fmt.Sprintf("field %s: reference %v vs vectorized %v",
				typ.Field(i).Name, av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
	return "results differ but no field does (impossible)"
}

// smallChunks shrinks the chunk granularity so modest test widths
// exercise multi-chunk striping (the production 4096 would leave
// everything below 8192 PEs single-chunked and secretly sequential).
func smallChunks(t *testing.T) {
	t.Helper()
	restore := simd.SetChunkPEsForTest(64)
	t.Cleanup(restore)
}

// TestVectorizedCorpus gates the vectorized VM against every committed
// corpus program at widths spanning one mask word, exactly one word,
// and many chunks.
func TestVectorizedCorpus(t *testing.T) {
	smallChunks(t)
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.ToSlash(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{16, 64, 1024} {
				vecDiff(t, file, string(src), n, 0)
			}
		})
	}
}

// TestVectorizedCorpusWide pushes the N-independent corpus programs to
// width 65536 (full production chunking). Kept under -race by `make
// check`: the chunk pool's claim/commit discipline is exactly what the
// race detector should see at scale.
func TestVectorizedCorpusWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide differential skipped in -short")
	}
	for _, name := range []string{"divergent.mc", "stencil.mc", "farm.mc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("examples", "mc", name))
			if err != nil {
				t.Fatal(err)
			}
			ia := 0
			if name == "farm.mc" {
				ia = 1 // the coordinator spawns its workers
			}
			vecDiff(t, name, string(src), 65536, ia)
		})
	}
}

// TestVectorizedSuite gates the harness workload suite at native
// widths — including the spawn workload from a single active PE, which
// drives the free-PE cursor.
func TestVectorizedSuite(t *testing.T) {
	smallChunks(t)
	for _, wl := range harness.Suite() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			vecDiff(t, wl.Name, wl.Source, wl.Width, wl.InitialActive)
		})
	}
}

// TestVectorizedProgen gates the vectorized VM against 120 generated
// programs with fixed seeds sweeping the generator's shape space, at
// three widths; every tenth seed also runs at width 65536 (skipped in
// -short).
func TestVectorizedProgen(t *testing.T) {
	smallChunks(t)
	const programs = 120
	for seed := int64(0); seed < programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			src := progen.Source(progen.Params{
				Seed:     seed,
				Barriers: seed%2 == 0,
				Floats:   seed%3 == 0,
				Calls:    seed%5 == 0,
				MaxDepth: 2,
				MaxStmts: 5,
			})
			widths := []int{16, 64, 1024}
			if seed%10 == 0 && !testing.Short() {
				widths = append(widths, 65536)
			}
			for _, n := range widths {
				vecDiff(t, "progen", src, n, 0)
			}
		})
	}
}

// TestVectorizedSpawnHeavy gates the free-PE cursor: spawn-heavy
// generated programs claim and release PEs from a single coordinator,
// so claim order, halt-recycling, and the cursor-lowering commit path
// must all match the reference scan-from-zero implementation.
func TestVectorizedSpawnHeavy(t *testing.T) {
	smallChunks(t)
	for seed := int64(40); seed < 46; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			src := progen.Source(progen.Params{
				Seed:     seed,
				Spawns:   8,
				MaxDepth: 2,
				MaxStmts: 5,
			})
			for _, n := range []int{64, 1024} {
				vecDiff(t, "spawnheavy", src, n, 1)
			}
		})
	}
}

// TestVectorizedMegaWidth runs the N-independent example programs at a
// million PEs — the paper's "massively parallel" regime — and still
// requires byte-identical Results at every worker count. Skipped in
// -short and under the race detector (the reference VM is ~30x slower
// instrumented; TestVectorizedCorpusWide covers the race-enabled
// ground at 65536).
func TestVectorizedMegaWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("mega-width differential skipped in -short")
	}
	if raceEnabled {
		t.Skip("mega-width differential skipped under -race (see TestVectorizedCorpusWide)")
	}
	for _, name := range []string{"divergent.mc", "stencil.mc", "farm.mc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("examples", "mc", name))
			if err != nil {
				t.Fatal(err)
			}
			ia := 0
			if name == "farm.mc" {
				ia = 1
			}
			vecDiff(t, name, string(src), 1<<20, ia)
		})
	}
}

// TestVectorizedWorkersMatchGOMAXPROCS pins the contract that Workers
// has no observable effect beyond wall time: an absurd worker count
// (more workers than chunks) still commits in chunk-ID order.
func TestVectorizedWorkersMatchGOMAXPROCS(t *testing.T) {
	smallChunks(t)
	c, err := msc.Compile(harness.Collatz, msc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := simd.ReferenceRun(c.Program, simd.Config{N: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 3, 7, 16, 64, runtime.GOMAXPROCS(0)} {
		got, err := simd.Run(c.Program, simd.Config{N: 1024, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: %s", w, diffResults(want, got))
		}
	}
}
