package msc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"msc"
	"msc/internal/faultinject"
	"msc/internal/obs"
	"msc/internal/telemetry"
)

// allPhases is the pipeline phase sequence the fault matrix sweeps.
var allPhases = []string{
	obs.PhaseParse, obs.PhaseAnalyze, obs.PhaseLower, obs.PhaseSimplify,
	obs.PhaseConvert, obs.PhaseCheck, obs.PhaseVet, obs.PhaseCodegen,
}

func readSource(t *testing.T, path string) string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestStepLimitAllEngines is the headline acceptance property: a
// committed non-terminating program must come back from every engine as
// a typed *StepLimitError — no hang, no panic, no leaked goroutine.
func TestStepLimitAllEngines(t *testing.T) {
	src := readSource(t, "testdata/robust/nonterminating.mc")
	c, err := msc.Compile(src, msc.Config{Compress: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	leak := faultinject.LeakCheck()
	rc := msc.RunConfig{N: 4, MaxSteps: 5000}

	runs := []struct {
		engine string
		run    func() error
	}{
		{"simd", func() error { _, err := c.RunSIMD(rc); return err }},
		{"mimd", func() error { _, err := c.RunMIMD(rc); return err }},
		{"interp", func() error { _, err := c.RunInterp(rc); return err }},
	}
	for _, r := range runs {
		err := r.run()
		var se *msc.StepLimitError
		if !errors.As(err, &se) {
			t.Fatalf("%s: want *StepLimitError, got %v", r.engine, err)
		}
		if se.Engine != r.engine {
			t.Errorf("%s: error attributes itself to engine %q", r.engine, se.Engine)
		}
		if se.Limit != int64(rc.MaxSteps) {
			t.Errorf("%s: limit %d, want %d", r.engine, se.Limit, rc.MaxSteps)
		}
		// The message must point at the static alternative and the knob.
		for _, want := range []string{"non-terminating", "msc vet", "MaxSteps"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", r.engine, err, want)
			}
		}
	}
	if lerr := leak(); lerr != nil {
		t.Fatal(lerr)
	}
}

// TestFaultMatrixAllPhases injects a panic and a budget exhaustion into
// every pipeline phase and requires a typed error attributing itself to
// exactly that phase.
func TestFaultMatrixAllPhases(t *testing.T) {
	src := readSource(t, "testdata/robust/barrierstorm.mc")
	for _, phase := range allPhases {
		for _, fault := range []faultinject.Fault{faultinject.PanicAtPhase, faultinject.BudgetAtPhase} {
			t.Run(phase+"/"+fault.String(), func(t *testing.T) {
				deactivate := faultinject.Activate(&faultinject.Plan{Phase: phase, Fault: fault})
				defer deactivate()
				_, err := msc.Compile(src, msc.Config{Compress: true, CSI: true, Hash: true})
				if err == nil {
					t.Fatalf("fault at %s did not surface", phase)
				}
				switch fault {
				case faultinject.PanicAtPhase:
					var ie *msc.InternalError
					if !errors.As(err, &ie) {
						t.Fatalf("want *InternalError, got %v", err)
					}
					if ie.Phase != phase {
						t.Fatalf("panic attributed to %q, want %q", ie.Phase, phase)
					}
					if len(ie.Stack) == 0 {
						t.Fatal("contained panic carries no stack")
					}
				case faultinject.BudgetAtPhase:
					var be *msc.BudgetError
					if !errors.As(err, &be) {
						t.Fatalf("want *BudgetError, got %v", err)
					}
					if be.Phase != phase {
						t.Fatalf("budget overrun attributed to %q, want %q", be.Phase, phase)
					}
				}
			})
		}
	}
}

// TestFaultMatrixSeeded sweeps seed-derived plans: whatever fault the
// seed picks, the pipeline returns a typed error with correct phase
// attribution — or completes, for faults that cannot land (e.g. a
// cancellation point past the automaton size or a tolerable slowdown).
func TestFaultMatrixSeeded(t *testing.T) {
	src := readSource(t, "testdata/vet/barriers.mc")
	for seed := int64(1); seed <= 24; seed++ {
		plan := faultinject.FromSeed(seed, allPhases)
		ctx, cancel := context.WithCancel(context.Background())
		plan.Cancel = cancel
		deactivate := faultinject.Activate(plan)
		_, err := msc.CompileContext(ctx, src, msc.Config{})
		deactivate()
		cancel()

		switch plan.Fault {
		case faultinject.PanicAtPhase:
			var ie *msc.InternalError
			if !errors.As(err, &ie) || ie.Phase != plan.Phase {
				t.Fatalf("seed %d (%v at %s): got %v", seed, plan.Fault, plan.Phase, err)
			}
		case faultinject.BudgetAtPhase:
			var be *msc.BudgetError
			if !errors.As(err, &be) || be.Phase != plan.Phase {
				t.Fatalf("seed %d (%v at %s): got %v", seed, plan.Fault, plan.Phase, err)
			}
		case faultinject.CancelAfterStates:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("seed %d (cancel after %d states): got %v", seed, plan.States, err)
			}
		case faultinject.SlowPhase:
			if err != nil {
				t.Fatalf("seed %d (slow %s): got %v", seed, plan.Phase, err)
			}
		}
	}
}

// TestCompilePreCanceledContext requires CompileContext to fail fast on
// an already-canceled context, before any phase runs.
func TestCompilePreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := msc.CompileContext(ctx, readSource(t, "testdata/vet/barriers.mc"), msc.Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCancelDuringCompile cancels mid-conversion through the public
// API and requires context.Canceled with no leaked workers.
func TestCancelDuringCompile(t *testing.T) {
	src := readSource(t, "testdata/vet/barriers.mc")
	leak := faultinject.LeakCheck()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deactivate := faultinject.Activate(&faultinject.Plan{
		Fault:  faultinject.CancelAfterStates,
		States: 3,
		Cancel: cancel,
	})
	_, err := msc.CompileContext(ctx, src, msc.Config{})
	deactivate()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if lerr := leak(); lerr != nil {
		t.Fatal(lerr)
	}
}

// TestBudgetMaxStates exercises the meta-state budget end to end
// through Limits (which overrides Config.MaxStates).
func TestBudgetMaxStates(t *testing.T) {
	src := readSource(t, "testdata/vet/barriers.mc") // 28 uncompressed meta states
	_, err := msc.Compile(src, msc.Config{Limits: msc.Limits{MaxStates: 4}})
	var be *msc.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Phase != obs.PhaseConvert || be.Resource != "meta_states" || be.Limit != 4 {
		t.Fatalf("wrong attribution: %+v", be)
	}
	if !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("budget error %q should say exceeded", err)
	}
}

// TestBudgetMaxMemBytes exercises the approximate-memory budget: one
// byte is always exceeded by the first interned meta state.
func TestBudgetMaxMemBytes(t *testing.T) {
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.Compile(src, msc.Config{Limits: msc.Limits{MaxMemBytes: 1}})
	var be *msc.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Phase != obs.PhaseConvert || be.Resource != "mem_bytes" {
		t.Fatalf("wrong attribution: %+v", be)
	}
}

// TestBudgetWallClock arms a slow-phase fault against a short deadline
// and requires a wall_clock budget error, not a bare context error.
func TestBudgetWallClock(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.SlowPhase,
		Delay: 300 * time.Millisecond,
	})
	defer deactivate()
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.Compile(src, msc.Config{Limits: msc.Limits{Deadline: 30 * time.Millisecond}})
	var be *msc.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Resource != "wall_clock" {
		t.Fatalf("wrong resource: %+v", be)
	}
	if be.Used < be.Limit {
		t.Fatalf("used %d below limit %d", be.Used, be.Limit)
	}
}

// TestDegradeLadder sabotages only the first compile attempt (Times=1)
// and requires the ladder to relax barrier-exact tracking, retry, and
// record the step in Compiled.Degradations and the obs counters.
func TestDegradeLadder(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.BudgetAtPhase,
		Times: 1,
	})
	defer deactivate()
	rec := obs.NewRecorder()
	src := readSource(t, "testdata/vet/barriers.mc")
	c, err := msc.Compile(src, msc.Config{
		Compress: true, BarrierExact: true, Degrade: true, Metrics: rec,
	})
	if err != nil {
		t.Fatalf("degraded compile failed: %v", err)
	}
	if len(c.Degradations) != 1 {
		t.Fatalf("want 1 degradation step, got %+v", c.Degradations)
	}
	d := c.Degradations[0]
	if d.Phase != obs.PhaseConvert || d.Resource != "faultinject" || !strings.Contains(d.Action, "barrier-exact") {
		t.Fatalf("wrong degradation step: %+v", d)
	}
	if c.Config.BarrierExact {
		t.Fatal("Compiled.Config still claims barrier-exact after degrading")
	}
	m := rec.Snapshot()
	if got := m.Counter(obs.CounterDegradeSteps); got != 1 {
		t.Errorf("degrade.steps = %d, want 1", got)
	}
	if got := m.PrefixSum(obs.BudgetCounterPrefix); got != 1 {
		t.Errorf("budget.* sum = %d, want 1", got)
	}
	if c.Stats.DegradeSteps != 1 || c.Stats.BudgetOverruns != 1 {
		t.Errorf("stats degrade=%d overruns=%d, want 1/1", c.Stats.DegradeSteps, c.Stats.BudgetOverruns)
	}
}

// TestDegradeLadderExhausted: with every rung already off, Degrade has
// nothing left to relax and the budget error surfaces.
func TestDegradeLadderExhausted(t *testing.T) {
	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert,
		Fault: faultinject.BudgetAtPhase,
	})
	defer deactivate()
	src := readSource(t, "testdata/vet/barriers.mc")
	_, err := msc.Compile(src, msc.Config{Degrade: true})
	var be *msc.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError after ladder exhaustion, got %v", err)
	}
}

// TestDegradeCSIBudget: a CSI-search overrun must degrade by disabling
// CSI specifically, not by walking the conversion rungs first.
func TestDegradeCSIBudget(t *testing.T) {
	src := readSource(t, "testdata/robust/deepnest.mc")
	conf := msc.Config{
		Compress: true, CSI: true, Hash: true,
		Limits: msc.Limits{MaxCSICandidates: 1},
	}
	_, err := msc.Compile(src, conf)
	var be *msc.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Phase != obs.PhaseCodegen || be.Resource != "csi_candidates" {
		t.Fatalf("wrong attribution: %+v", be)
	}

	conf.Degrade = true
	c, err := msc.Compile(src, conf)
	if err != nil {
		t.Fatalf("degraded compile failed: %v", err)
	}
	if len(c.Degradations) != 1 || !strings.Contains(c.Degradations[0].Action, "csi off") {
		t.Fatalf("want a single csi-off degradation, got %+v", c.Degradations)
	}
	if c.Config.CSI {
		t.Fatal("Compiled.Config still claims CSI after degrading")
	}
	if c.Config.Compress != true || c.Config.BarrierExact {
		t.Fatalf("unrelated settings were touched: %+v", c.Config)
	}
}

// TestRunConfigMaxStepsValidate pins the validation path and default.
func TestRunConfigMaxStepsValidate(t *testing.T) {
	if err := (msc.RunConfig{N: 4, MaxSteps: -1}).Validate(); err == nil {
		t.Fatal("negative MaxSteps accepted")
	}
	if msc.DefaultMaxSteps != 1<<24 {
		t.Fatalf("DefaultMaxSteps = %d, want %d", msc.DefaultMaxSteps, 1<<24)
	}
}

// TestFaultPanicSpanCloses proves the telemetry contract under failure:
// a panic injected inside a phase still closes that phase's span (with
// a "panic" event on it), the streaming exporter delivers the whole
// span tree and joins its goroutine at Close, and nothing leaks.
func TestFaultPanicSpanCloses(t *testing.T) {
	src := readSource(t, "testdata/robust/barrierstorm.mc")
	leak := faultinject.LeakCheckWithin(2 * time.Second)

	tr := telemetry.NewTracer()
	var buf bytes.Buffer
	exp := telemetry.NewStreamExporter(tr, &buf)
	tr.Exporter = exp

	deactivate := faultinject.Activate(&faultinject.Plan{
		Phase: obs.PhaseConvert, Fault: faultinject.PanicAtPhase,
	})
	defer deactivate()

	_, err := msc.Compile(src, msc.Config{Compress: true, Tracer: tr})
	var ie *msc.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if err := exp.Close(); err != nil {
		t.Fatalf("exporter close: %v", err)
	}

	// The faulted phase's span must have been streamed (only ended
	// spans are exported) and must carry the panic event.
	type event struct {
		Name  string         `json:"name"`
		Attrs map[string]any `json:"attrs"`
	}
	type span struct {
		Name   string  `json:"name"`
		DurNS  int64   `json:"dur_ns"`
		Events []event `json:"events"`
	}
	var convert *span
	sawCompile := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var s span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad exported span %q: %v", line, err)
		}
		switch s.Name {
		case "phase." + obs.PhaseConvert:
			convert = &s
		case "compile":
			sawCompile = true
		}
	}
	if convert == nil {
		t.Fatal("panicked phase span was never exported (span leaked open)")
	}
	if !sawCompile {
		t.Fatal("compile root span not exported on the error path")
	}
	found := false
	for _, e := range convert.Events {
		if e.Name == "panic" {
			found = true
			if v, _ := e.Attrs["value"].(string); !strings.Contains(v, "faultinject") {
				t.Errorf("panic event value %q does not carry the panic text", v)
			}
		}
	}
	if !found {
		t.Fatalf("phase span closed without a panic event: %+v", convert.Events)
	}

	if lerr := leak(); lerr != nil {
		t.Fatal(lerr)
	}
}
