package msc_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"msc"
	"msc/internal/obs"
	"msc/internal/progen"
	"msc/internal/telemetry"
)

// TestConcurrentCompilesShareConfig is the shared-infrastructure race
// test: N goroutines compile through ONE Config value carrying a
// shared Recorder (one telemetry.Registry) and a shared Tracer — the
// way CompileService uses the library. Under -race this flushes out
// any unsynchronized state; the assertions below additionally catch
// lost counter updates and cross-request contamination.
func TestConcurrentCompilesShareConfig(t *testing.T) {
	const workers = 16

	rec := obs.NewRecorderIn(telemetry.NewRegistry())
	conf := msc.DefaultConfig()
	conf.Metrics = rec
	conf.Tracer = telemetry.NewTracer()

	// Baseline: one solo compile of the reference program, so we know
	// exactly how many meta states one compile contributes.
	refSrc := readSource(t, "testdata/vet/barriers.mc")
	refCompiled, err := msc.Compile(refSrc, conf)
	if err != nil {
		t.Fatal(err)
	}
	refMPL := refCompiled.MPL()
	// CounterTokens accumulates (unlike the state counts, which are
	// last-value), so it is the counter that detects lost updates.
	perCompile := rec.Value(obs.CounterTokens)
	if perCompile < 1 {
		t.Fatalf("baseline compile recorded no tokens")
	}

	// Half the goroutines compile the identical source (results must be
	// byte-identical to the baseline — concurrency must not perturb the
	// automaton); the other half compile distinct progen programs
	// (results must stay distinct — no cross-request bleed).
	var wg sync.WaitGroup
	mpls := make([]string, workers)
	errs := make([]error, workers)
	distinct := make([]string, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := refSrc
			if i%2 == 1 {
				src = progen.Source(progen.Params{
					Seed: int64(9000 + i), Barriers: true, Floats: true,
					MaxDepth: 3, MaxStmts: 5, Vars: 4, LoopTrip: 3,
				})
				distinct[i] = src
			}
			c, err := msc.Compile(src, conf)
			if err != nil {
				errs[i] = fmt.Errorf("worker %d: %w", i, err)
				return
			}
			mpls[i] = c.MPL()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var distinctTokens int64
	for i := 0; i < workers; i++ {
		if i%2 == 0 {
			if mpls[i] != refMPL {
				t.Errorf("worker %d: identical source produced a different automaton under concurrency", i)
			}
		} else {
			if mpls[i] == refMPL {
				t.Errorf("worker %d: distinct source produced the reference automaton (cross-request bleed?)\n%s", i, distinct[i])
			}
			// Recount this program's token contribution solo, through a
			// private recorder, for the counter check below.
			solo := obs.NewRecorderIn(telemetry.NewRegistry())
			soloConf := msc.DefaultConfig()
			soloConf.Metrics = solo
			if _, err := msc.Compile(distinct[i], soloConf); err != nil {
				t.Fatalf("worker %d recount: %v", i, err)
			}
			distinctTokens += solo.Value(obs.CounterTokens)
		}
	}

	// No counter loss: the shared recorder saw the baseline, workers/2
	// reference compiles, and every distinct program's tokens.
	want := perCompile + perCompile*int64(workers/2) + distinctTokens
	if got := rec.Value(obs.CounterTokens); got != want {
		t.Errorf("shared recorder lost updates: tokens counter = %d, want %d", got, want)
	}
}

// TestConcurrentServiceCompiles drives the same property through the
// HTTP handler: concurrent identical requests return byte-identical
// MPL, and the service recorder's counters account for every request.
func TestConcurrentServiceCompiles(t *testing.T) {
	const n = 12
	svc := msc.NewCompileService(msc.ServiceConfig{Workers: 4})
	defer svc.Close()
	src := readSource(t, "testdata/vet/barriers.mc")
	body := compileBody(t, src, `"emit": ["mpl"]`)

	var wg sync.WaitGroup
	mpls := make([]string, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postCompile(t, svc, "/compile", body)
			codes[i] = w.Code
			var resp msc.CompileResponse
			if w.Code == 200 {
				_ = json.Unmarshal(w.Body.Bytes(), &resp)
				mpls[i] = resp.MPL
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if mpls[i] == "" || mpls[i] != mpls[0] {
			t.Errorf("request %d: automaton differs under concurrency", i)
		}
	}
	st := statusz(t, svc)
	if st.Status2xx < n {
		t.Errorf("status counters lost updates: 2xx = %d, want >= %d", st.Status2xx, n)
	}
}
