package msc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"msc/internal/cache"
	"msc/internal/faultinject"
	"msc/internal/obs"
	"msc/internal/progen"
)

// A source with a static-analysis finding, so the diagnostic round trip
// through the cache (severity included) is actually exercised.
const cachedSrc = "poly int x;\npoly int y;\nvoid main() { y = x; x = y + 1; return; }"

func openTestCache(t *testing.T) *Cache {
	t.Helper()
	cc, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	return cc
}

func TestCacheColdWarmHit(t *testing.T) {
	cc := openTestCache(t)
	rec := obs.NewRecorder()
	conf := DefaultConfig()
	conf.Cache = cc
	conf.Metrics = rec

	cold, err := Compile(cachedSrc, conf)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	if cold.Stats.CacheOutcome != "stored" {
		t.Fatalf("cold outcome = %q, want stored", cold.Stats.CacheOutcome)
	}
	if cold.AST == nil {
		t.Fatal("cold compile lost its AST")
	}
	if n := rec.Value(obs.CounterPipelineRuns); n != 1 {
		t.Fatalf("pipeline runs after cold = %d", n)
	}

	warm, err := Compile(cachedSrc, conf)
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if warm.Stats.CacheOutcome != "hit" {
		t.Fatalf("warm outcome = %q, want hit (errors: %v)", warm.Stats.CacheOutcome, warm.Stats.CacheErrors)
	}
	if warm.AST != nil {
		t.Fatal("cache hits carry no AST by contract")
	}
	if n := rec.Value(obs.CounterPipelineRuns); n != 1 {
		t.Fatalf("pipeline runs after warm = %d, want 1 (the hit must not recompile)", n)
	}
	if rec.Value(obs.CounterCacheHits) != 1 || rec.Value(obs.CounterCacheMisses) != 1 || rec.Value(obs.CounterCacheStores) != 1 {
		t.Fatalf("cache counters: hits=%d misses=%d stores=%d",
			rec.Value(obs.CounterCacheHits), rec.Value(obs.CounterCacheMisses), rec.Value(obs.CounterCacheStores))
	}
	if cold.Fingerprint() != warm.Fingerprint() {
		t.Fatal("warm hit is not byte-identical to the cold compile")
	}
	if !reflect.DeepEqual(cold.Diagnostics, warm.Diagnostics) {
		t.Fatalf("diagnostics did not round-trip:\ncold %v\nwarm %v", cold.Diagnostics, warm.Diagnostics)
	}
	// The hit must be operational, not just structurally equal.
	if warm.MetaStates() == 0 || warm.MetaStates() != cold.MetaStates() {
		t.Fatalf("meta states: cold %d warm %d", cold.MetaStates(), warm.MetaStates())
	}
	st := cc.Stats()
	if st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestCacheFaultRecoveryMatrix drives every filesystem fault through a
// cached compile and proves the robustness contract end to end: the
// compile always succeeds, the fault is absorbed into CacheErrors and
// counters, and cold, faulted, recovered, and warm compiles all produce
// the same result fingerprint.
func TestCacheFaultRecoveryMatrix(t *testing.T) {
	conf := DefaultConfig()
	base, err := Compile(cachedSrc, conf) // no cache: ground truth
	if err != nil {
		t.Fatal(err)
	}
	wantFP := base.Fingerprint()

	compile := func(t *testing.T, cc *Cache, rec *obs.Recorder) *Compiled {
		t.Helper()
		c := conf
		c.Cache = cc
		c.Metrics = rec
		got, err := Compile(cachedSrc, c)
		if err != nil {
			t.Fatalf("cached compile must never fail on a cache fault: %v", err)
		}
		if got.Fingerprint() != wantFP {
			t.Fatalf("fingerprint diverged: outcome %q errors %v", got.Stats.CacheOutcome, got.Stats.CacheErrors)
		}
		return got
	}

	t.Run("torn-write-at-byte-k", func(t *testing.T) {
		cc := openTestCache(t)
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.TornWrite, Byte: 100, Times: 1})
		compile(t, cc, nil) // the tear is silent at write time
		undo()
		rec := obs.NewRecorder()
		got := compile(t, cc, rec) // detects, quarantines, recompiles, re-stores
		if got.Stats.CacheOutcome != "stored" || len(got.Stats.CacheErrors) == 0 {
			t.Fatalf("outcome %q errors %v; want stored with absorbed error", got.Stats.CacheOutcome, got.Stats.CacheErrors)
		}
		if rec.Value(obs.CounterCacheQuarantined) != 1 {
			t.Fatalf("quarantined counter = %d", rec.Value(obs.CounterCacheQuarantined))
		}
		if got = compile(t, cc, nil); got.Stats.CacheOutcome != "hit" {
			t.Fatalf("post-recovery outcome = %q, want hit", got.Stats.CacheOutcome)
		}
	})

	t.Run("enospc-at-write-n", func(t *testing.T) {
		cc := openTestCache(t)
		rec := obs.NewRecorder()
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.WriteENOSPC, Nth: 1, Times: 1})
		got := compile(t, cc, rec)
		undo()
		if got.Stats.CacheOutcome != "uncached" || len(got.Stats.CacheErrors) == 0 {
			t.Fatalf("outcome %q errors %v; want uncached with absorbed ENOSPC", got.Stats.CacheOutcome, got.Stats.CacheErrors)
		}
		if rec.Value(obs.CounterCacheErrors) == 0 {
			t.Fatal("cache.errors not recorded")
		}
		if got = compile(t, cc, nil); got.Stats.CacheOutcome != "stored" {
			t.Fatalf("recovery outcome = %q, want stored", got.Stats.CacheOutcome)
		}
	})

	t.Run("bit-flip-on-read", func(t *testing.T) {
		cc := openTestCache(t)
		compile(t, cc, nil) // seed the entry
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.BitFlipRead, Byte: 12345, Times: 1})
		got := compile(t, cc, nil)
		undo()
		if len(got.Stats.CacheErrors) == 0 {
			t.Fatal("bit flip was not absorbed into CacheErrors")
		}
		if got = compile(t, cc, nil); got.Stats.CacheOutcome != "hit" {
			t.Fatalf("post-flip outcome = %q, want hit", got.Stats.CacheOutcome)
		}
	})

	t.Run("rename-failure", func(t *testing.T) {
		cc := openTestCache(t)
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.RenameFail, Times: 1})
		got := compile(t, cc, nil)
		undo()
		if got.Stats.CacheOutcome != "uncached" || len(got.Stats.CacheErrors) == 0 {
			t.Fatalf("outcome %q errors %v", got.Stats.CacheOutcome, got.Stats.CacheErrors)
		}
		if got = compile(t, cc, nil); got.Stats.CacheOutcome != "stored" {
			t.Fatalf("recovery outcome = %q", got.Stats.CacheOutcome)
		}
	})

	t.Run("crash-between-temp-and-rename", func(t *testing.T) {
		dir := t.TempDir()
		cc, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		undo := faultinject.Activate(&faultinject.Plan{Fault: faultinject.CrashBeforeRename, Times: 1})
		got := compile(t, cc, nil)
		undo()
		if got.Stats.CacheOutcome != "uncached" || len(got.Stats.CacheErrors) == 0 {
			t.Fatalf("outcome %q errors %v", got.Stats.CacheOutcome, got.Stats.CacheErrors)
		}
		// "Restart" after the crash: a fresh handle sweeps the orphan and
		// the cache converges to a verified hit.
		cc2, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		if ents, _ := os.ReadDir(filepath.Join(dir, "tmp")); len(ents) != 0 {
			t.Fatalf("orphan temp not swept on reopen: %d files", len(ents))
		}
		if got = compile(t, cc2, nil); got.Stats.CacheOutcome != "stored" {
			t.Fatalf("post-crash outcome = %q", got.Stats.CacheOutcome)
		}
		if got = compile(t, cc2, nil); got.Stats.CacheOutcome != "hit" {
			t.Fatalf("converged outcome = %q", got.Stats.CacheOutcome)
		}
	})
}

// TestCacheSingleFlight: concurrent identical compiles share one
// pipeline execution. The leader is pinned inside the pipeline by a
// slow-phase fault long enough for every other goroutine to coalesce
// onto its flight; stragglers that miss the flight window hit the
// store instead — either way the pipeline runs exactly once.
func TestCacheSingleFlight(t *testing.T) {
	cc := openTestCache(t)
	rec := obs.NewRecorder()
	conf := DefaultConfig()
	conf.Cache = cc
	conf.Metrics = rec

	undo := faultinject.Activate(&faultinject.Plan{
		Fault: faultinject.SlowPhase, Phase: obs.PhaseConvert, Delay: 300 * time.Millisecond, Times: 1,
	})
	defer undo()

	const n = 8
	results := make([]*Compiled, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Compile(cachedSrc, conf)
		}(i)
	}
	wg.Wait()

	fp := ""
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("compile %d: %v", i, errs[i])
		}
		if fp == "" {
			fp = results[i].Fingerprint()
		} else if results[i].Fingerprint() != fp {
			t.Fatalf("compile %d returned a different result", i)
		}
	}
	if runs := rec.Value(obs.CounterPipelineRuns); runs != 1 {
		t.Fatalf("pipeline ran %d times for %d identical concurrent compiles", runs, n)
	}
	shared := rec.Value(obs.CounterCacheShared)
	hits := rec.Value(obs.CounterCacheHits)
	if shared+hits != n-1 {
		t.Fatalf("dedup accounting: shared=%d hits=%d, want %d combined", shared, hits, n-1)
	}
	if cc.activeFlights() != 0 {
		t.Fatalf("%d flights leaked", cc.activeFlights())
	}
	if cc.Stats().SingleFlightShared != shared {
		t.Fatalf("Stats.SingleFlightShared = %d, recorder says %d", cc.Stats().SingleFlightShared, shared)
	}
}

// TestCacheLeaderCancelPromotion: when the leader fails only because
// its own context died, a waiter with a live context must promote
// itself to leader and compile — the cancellation is not contagious —
// and the flight table must not leak either way.
func TestCacheLeaderCancelPromotion(t *testing.T) {
	cc := openTestCache(t)
	rec := obs.NewRecorder()
	conf := DefaultConfig()
	conf.Cache = cc
	conf.Metrics = rec

	key := cacheKey(cachedSrc, conf)
	name := cache.Name(key)

	// Stage a flight by hand so the scheduling is deterministic: the
	// waiter is provably parked on the flight before the leader fails.
	fl := &flight{done: make(chan struct{})}
	cc.mu.Lock()
	cc.flights[name] = fl
	cc.mu.Unlock()

	type res struct {
		c   *Compiled
		err error
	}
	waiter := make(chan res, 1)
	go func() {
		c, err := Compile(cachedSrc, conf)
		waiter <- res{c, err}
	}()
	// Let the waiter park. Its only way forward is fl.done.
	time.Sleep(50 * time.Millisecond)

	// The leader dies of its own cancellation.
	fl.err = fmt.Errorf("msc: canceled before convert: %w", context.Canceled)
	fl.canceled = true
	cc.mu.Lock()
	delete(cc.flights, name)
	cc.mu.Unlock()
	close(fl.done)

	r := <-waiter
	if r.err != nil {
		t.Fatalf("promoted waiter failed: %v", r.err)
	}
	if r.c.Stats.CacheOutcome != "stored" {
		t.Fatalf("promoted waiter outcome = %q, want stored (a real compile)", r.c.Stats.CacheOutcome)
	}
	if runs := rec.Value(obs.CounterPipelineRuns); runs != 1 {
		t.Fatalf("pipeline runs = %d", runs)
	}
	if cc.activeFlights() != 0 {
		t.Fatalf("%d flights leaked after promotion", cc.activeFlights())
	}

	// A waiter whose own context is also dead inherits the error instead
	// of compiling against a canceled context.
	fl2 := &flight{done: make(chan struct{})}
	cc.mu.Lock()
	cc.flights[name] = fl2
	cc.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done2 := make(chan res, 1)
	go func() {
		c, err := CompileContext(ctx, cachedSrc, conf)
		done2 <- res{c, err}
	}()
	r2 := <-done2
	if r2.err == nil || !errors.Is(r2.err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", r2.err)
	}
	cc.mu.Lock()
	delete(cc.flights, name)
	cc.mu.Unlock()
	close(fl2.done)
}

// TestCacheConfigFingerprint: result-affecting knobs separate keys,
// result-neutral knobs share them.
func TestCacheConfigFingerprint(t *testing.T) {
	base := DefaultConfig()
	affecting := []func(*Config){
		func(c *Config) { c.Compress = false },
		func(c *Config) { c.TimeSplit = true },
		func(c *Config) { c.BarrierExact = true },
		func(c *Config) { c.ExpandCalls = true },
		func(c *Config) { c.CSI = false },
		func(c *Config) { c.Hash = false },
		func(c *Config) { c.Opt = 2 },
		func(c *Config) { c.Vet = true },
		func(c *Config) { c.MaxStates = 1000 },
		func(c *Config) { c.Limits.MaxStates = 500 },
		func(c *Config) { c.Limits.MaxCSICandidates = 3 },
	}
	baseFP := configFingerprint(base)
	seen := map[[32]byte]int{baseFP: -1}
	for i, mut := range affecting {
		c := base
		mut(&c)
		fp := configFingerprint(c)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("mutation %d collides with %d", i, prev)
		}
		seen[fp] = i
	}
	neutral := []func(*Config){
		func(c *Config) { c.ConvertWorkers = 7 },
		func(c *Config) { c.Verify = true },
		func(c *Config) { c.Degrade = true },
		func(c *Config) { c.Limits.Deadline = time.Hour },
		func(c *Config) { c.Metrics = obs.NewRecorder() },
	}
	for i, mut := range neutral {
		c := base
		mut(&c)
		if configFingerprint(c) != baseFP {
			t.Fatalf("result-neutral mutation %d changed the fingerprint", i)
		}
	}
}

// TestCacheDegradedNotStored: a compile that walked the degradation
// ladder reflects this process's budget pressure, not the (source,
// config) identity — it must not be cached.
func TestCacheDegradedNotStored(t *testing.T) {
	cc := openTestCache(t)
	rec := obs.NewRecorder()
	conf := DefaultConfig()
	conf.Cache = cc
	conf.Metrics = rec
	conf.Degrade = true

	undo := faultinject.Activate(&faultinject.Plan{
		Fault: faultinject.BudgetAtPhase, Phase: obs.PhaseCodegen, Times: 1,
	})
	got, err := Compile(cachedSrc, conf)
	undo()
	if err != nil {
		t.Fatalf("degraded compile: %v", err)
	}
	if len(got.Degradations) == 0 {
		t.Fatal("test premise broken: compile did not degrade")
	}
	if got.Stats.CacheOutcome != "uncached" {
		t.Fatalf("degraded outcome = %q, want uncached", got.Stats.CacheOutcome)
	}
	if cc.Stats().Entries != 0 {
		t.Fatalf("degraded result was stored: %+v", cc.Stats())
	}
	// The next compile (no fault) runs the pipeline again and stores.
	got2, err := Compile(cachedSrc, conf)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Stats.CacheOutcome != "stored" || len(got2.Degradations) != 0 {
		t.Fatalf("recovery outcome = %q degradations %v", got2.Stats.CacheOutcome, got2.Degradations)
	}
}

// TestCacheDeterminismGate is the cold/warm/incremental determinism
// gate over the example corpus and generated programs: an uncached
// compile, a cache-storing compile, a warm hit, and a hit through a
// reopened store must all carry one fingerprint.
func TestCacheDeterminismGate(t *testing.T) {
	srcs := map[string]string{}
	paths, err := filepath.Glob("examples/mc/*.mc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(data)
	}
	for _, seed := range []int64{2, 11, 29} {
		srcs[fmt.Sprintf("progen-%d", seed)] = progen.Source(progen.Params{Seed: seed, Barriers: true, Calls: seed%2 == 1})
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cc, err := OpenCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			conf := DefaultConfig()
			uncached, err := Compile(src, conf)
			if err != nil {
				t.Fatalf("uncached: %v", err)
			}
			want := uncached.Fingerprint()

			conf.Cache = cc
			cold, err := Compile(src, conf)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			warm, err := Compile(src, conf)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			cc2, err := OpenCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			conf.Cache = cc2
			incr, err := Compile(src, conf)
			if err != nil {
				t.Fatalf("incremental: %v", err)
			}
			if cold.Fingerprint() != want || warm.Fingerprint() != want || incr.Fingerprint() != want {
				t.Fatalf("fingerprints diverged: uncached %s cold %s warm %s incremental %s",
					want, cold.Fingerprint(), warm.Fingerprint(), incr.Fingerprint())
			}
			if warm.Stats.CacheOutcome != "hit" || incr.Stats.CacheOutcome != "hit" {
				t.Fatalf("outcomes: warm %q incremental %q", warm.Stats.CacheOutcome, incr.Stats.CacheOutcome)
			}
		})
	}
}
