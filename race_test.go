//go:build race

package msc_test

// raceEnabled reports whether this test binary was built with the race
// detector; tests whose reference baselines are prohibitively slow
// when instrumented consult it.
const raceEnabled = true
