package msc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"msc/internal/obs"
	"msc/internal/telemetry"
)

// This file is the embeddable form of the mscd compile service: a
// plain http.Handler wrapping CompileContext with a bounded worker
// pool, an admission queue, the typed error taxonomy mapped to HTTP
// statuses, optional trace streaming, and deadline-bounded draining.
// cmd/mscd adds only the listener, flags, and signal handling, so the
// whole service surface is testable in-process without a socket. See
// docs/SERVICE.md for the HTTP API.

// ServiceConfig sizes and parameterizes a CompileService. The zero
// value gets production defaults.
type ServiceConfig struct {
	// Workers bounds how many compiles run concurrently (the worker
	// pool). 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot beyond the pool itself. A request arriving with the
	// queue full is rejected with 429. 0 means 4×Workers.
	QueueDepth int
	// DefaultLimits applies to requests that carry no limits of their
	// own. The zero value means unlimited (not recommended for a public
	// service; cmd/mscd defaults the deadline).
	DefaultLimits Limits
	// MaxSourceBytes caps the request body (413 beyond it). 0 means
	// 1 MiB.
	MaxSourceBytes int64
	// DrainGrace bounds how long Drain waits for canceled in-flight
	// compiles to unwind after the drain context expires. 0 means 5s.
	DrainGrace time.Duration
	// Registry, when non-nil, receives the service metrics (and the
	// compile metrics of every request) for one shared /metrics
	// exposition. Nil creates a private registry.
	Registry *telemetry.Registry
	// Cache, when non-nil, fronts every request's compile with the
	// artifact cache (Config.Cache semantics: content-addressed store,
	// single-flight dedup, graceful degradation). The cache.* counters
	// land on /metrics through the shared recorder and a snapshot is
	// reported on /statusz. Draining interacts safely: flights belong to
	// in-flight requests, so Drain's wait drains the flight table too.
	Cache *Cache
}

func (sc *ServiceConfig) fill() {
	if sc.Workers <= 0 {
		sc.Workers = runtime.GOMAXPROCS(0)
	}
	if sc.QueueDepth <= 0 {
		sc.QueueDepth = 4 * sc.Workers
	}
	if sc.MaxSourceBytes <= 0 {
		sc.MaxSourceBytes = 1 << 20
	}
	if sc.DrainGrace <= 0 {
		sc.DrainGrace = 5 * time.Second
	}
	if sc.Registry == nil {
		sc.Registry = telemetry.NewRegistry()
	}
}

// CompileService is the compile-as-a-service handler. Create with
// NewCompileService; serve it directly (it implements http.Handler) or
// mount it on a mux. All methods are safe for concurrent use.
type CompileService struct {
	cfg ServiceConfig
	rec *obs.Recorder // shared across requests; backs the registry
	mux *http.ServeMux

	sem     chan struct{} // worker slots
	waiting atomic.Int64  // requests queued for a slot

	drainOnce sync.Once
	drainCh   chan struct{} // closed when draining starts
	draining  atomic.Bool
	inflight  sync.WaitGroup

	killCtx    context.Context // canceled to abort in-flight compiles
	killCancel context.CancelFunc

	// statusz counters.
	served   atomic.Int64
	byClass  [6]atomic.Int64 // index = status/100
	rejected atomic.Int64    // 429 overloaded + 503 draining

	latency  *telemetry.Histogram
	inFlight *telemetry.Gauge
	queued   *telemetry.Gauge
}

// NewCompileService builds the service and registers its metrics.
func NewCompileService(cfg ServiceConfig) *CompileService {
	cfg.fill()
	killCtx, killCancel := context.WithCancel(context.Background())
	s := &CompileService{
		cfg:        cfg,
		rec:        obs.NewRecorderIn(cfg.Registry),
		sem:        make(chan struct{}, cfg.Workers),
		drainCh:    make(chan struct{}),
		killCtx:    killCtx,
		killCancel: killCancel,
		latency: cfg.Registry.Histogram("service.latency_ns",
			"request latency (ns)", latencyBuckets),
		inFlight: cfg.Registry.Gauge("service.in_flight", "requests being served"),
		queued:   cfg.Registry.Gauge("service.queue_waiting", "requests waiting for a worker slot"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.Handle("GET /metrics", s.metricsHandler())
	s.mux = mux
	return s
}

// Registry returns the registry carrying the service and compile
// metrics (the one /metrics serves).
func (s *CompileService) Registry() *telemetry.Registry { return s.cfg.Registry }

// ServeHTTP dispatches to the service endpoints.
func (s *CompileService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting new compiles and waits for the in-flight ones.
// When ctx expires first, the remaining compiles are canceled (they
// observe it at the next phase boundary or committed meta state) and
// Drain waits up to DrainGrace longer before reporting failure.
// Idempotent; concurrent calls all wait.
func (s *CompileService) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.killCancel()
	select {
	case <-done:
		return fmt.Errorf("msc: drain deadline exceeded; in-flight compiles were canceled")
	case <-time.After(s.cfg.DrainGrace):
		return fmt.Errorf("msc: drain failed: requests still in flight %v after cancellation", s.cfg.DrainGrace)
	}
}

// Close aborts all in-flight work immediately (Drain first for a
// graceful stop).
func (s *CompileService) Close() error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	s.killCancel()
	return nil
}

// ---- wire types ----------------------------------------------------

// CompileRequest is the POST /compile body. Absent config means
// DefaultConfig; absent limits means ServiceConfig.DefaultLimits.
type CompileRequest struct {
	Source string      `json:"source"`
	Config *WireConfig `json:"config,omitempty"`
	Limits *WireLimits `json:"limits,omitempty"`
	// Emit requests extra renderings of the compiled program: "mpl"
	// (Listing 5 text) and/or "dot" (automaton Graphviz).
	Emit []string `json:"emit,omitempty"`
	// Run optionally executes the program after compiling.
	Run *WireRun `json:"run,omitempty"`
}

// WireConfig is the JSON form of the Config knobs a client may set.
// Fields mirror Config; zero values mean off (not "default"), so a
// request that sends config gets exactly what it asked for.
type WireConfig struct {
	Compress       bool `json:"compress"`
	TimeSplit      bool `json:"time_split"`
	SplitDelta     int  `json:"split_delta,omitempty"`
	SplitPercent   int  `json:"split_percent,omitempty"`
	BarrierExact   bool `json:"barrier_exact"`
	ExpandCalls    bool `json:"expand_calls"`
	CSI            bool `json:"csi"`
	Hash           bool `json:"hash"`
	MaxStates      int  `json:"max_states,omitempty"`
	ConvertWorkers int  `json:"convert_workers,omitempty"`
	Vet            bool `json:"vet"`
	// Opt is the dataflow optimization level (0, 1, or 2); Verify runs
	// the cross-phase IR verifier between pipeline phases.
	Opt    int  `json:"opt,omitempty"`
	Verify bool `json:"verify,omitempty"`
}

// WireLimits is the JSON form of Limits (deadline in milliseconds).
type WireLimits struct {
	DeadlineMS       int64 `json:"deadline_ms,omitempty"`
	MaxStates        int   `json:"max_states,omitempty"`
	MaxCSICandidates int64 `json:"max_csi_candidates,omitempty"`
	MaxMemBytes      int64 `json:"max_mem_bytes,omitempty"`
}

// WireRun asks the service to execute the compiled program.
type WireRun struct {
	Engine   string `json:"engine"` // "simd" (default), "mimd", "interp"
	N        int    `json:"n"`      // machine width, default 16
	MaxSteps int    `json:"max_steps,omitempty"`
}

// CompileResponse is the POST /compile success body.
type CompileResponse struct {
	MetaStates   int           `json:"meta_states"`
	MIMDStates   int           `json:"mimd_states"`
	Stats        *CompileStats `json:"stats,omitempty"`
	Diagnostics  []Diagnostic  `json:"diagnostics,omitempty"`
	Degradations []DegradeStep `json:"degradations,omitempty"`
	MPL          string        `json:"mpl,omitempty"`
	Dot          string        `json:"dot,omitempty"`
	Run          *RunResponse  `json:"run,omitempty"`
}

// RunResponse reports an optional post-compile execution.
type RunResponse struct {
	Engine string `json:"engine"`
	N      int    `json:"n"`
	Cycles int64  `json:"cycles"`
}

// ErrorBody is the typed JSON error every non-2xx response carries.
// Error is the taxonomy kind: "invalid", "budget", "step_limit",
// "internal", "overloaded", "draining", or "canceled" (see the status
// table in docs/SERVICE.md).
type ErrorBody struct {
	Error    string `json:"error"`
	Message  string `json:"message"`
	Phase    string `json:"phase,omitempty"`
	Resource string `json:"resource,omitempty"`
	Limit    int64  `json:"limit,omitempty"`
	Used     int64  `json:"used,omitempty"`
	Engine   string `json:"engine,omitempty"`
}

// classifyError maps the compile/run error taxonomy onto HTTP statuses.
// The typed checks come first: a wall-clock *BudgetError wraps
// context.DeadlineExceeded, and must classify as budget, not as a
// cancellation.
func classifyError(err error) (int, ErrorBody) {
	var ie *InternalError
	var be *BudgetError
	var se *StepLimitError
	var ce *CacheError
	switch {
	case errors.As(err, &ce):
		// Defense in depth: the cache layer absorbs its own failures and
		// falls through to a real compile, so a CacheError should never
		// escape CompileContext. If one ever does, it is the server's
		// fault, not the client's — 500, with the cache details kept in
		// the server log.
		return http.StatusInternalServerError, ErrorBody{
			Error:   "internal",
			Message: "internal cache error (details in server log)",
		}
	case errors.As(err, &ie):
		// Contained panic: report the phase, never the stack or the
		// panic value (internals stay in the server log).
		return http.StatusInternalServerError, ErrorBody{
			Error:   "internal",
			Message: fmt.Sprintf("internal error in %s (contained panic; details in server log)", ie.Phase),
			Phase:   ie.Phase,
		}
	case errors.As(err, &be):
		return http.StatusTooManyRequests, ErrorBody{
			Error:    "budget",
			Message:  be.Error(),
			Phase:    be.Phase,
			Resource: be.Resource,
			Limit:    be.Limit,
			Used:     be.Used,
		}
	case errors.As(err, &se):
		return http.StatusUnprocessableEntity, ErrorBody{
			Error:   "step_limit",
			Message: se.Error(),
			Engine:  se.Engine,
			Limit:   se.Limit,
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The request context died (client gone or drain kill); 503 so
		// a retry elsewhere is the documented move.
		return http.StatusServiceUnavailable, ErrorBody{Error: "canceled", Message: err.Error()}
	case strings.Contains(err.Error(), "internal error"):
		return http.StatusInternalServerError, ErrorBody{
			Error:   "internal",
			Message: "internal compiler error (details in server log)",
		}
	default:
		// Parse, analyze, vet, and validation failures: the input's
		// fault.
		return http.StatusBadRequest, ErrorBody{Error: "invalid", Message: err.Error()}
	}
}

// ---- request handling ----------------------------------------------

func (s *CompileService) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	s.count(status)
}

func (s *CompileService) count(status int) {
	s.served.Add(1)
	if c := status / 100; c >= 0 && c < len(s.byClass) {
		s.byClass[c].Add(1)
	}
	s.cfg.Registry.Counter("service.responses", "responses by status",
		telemetry.Label{Name: "status", Value: strconv.Itoa(status)}).Add(1)
}

// admit reserves a worker slot, queueing up to QueueDepth requests.
// It reports the reservation, or writes the rejection and reports
// false.
func (s *CompileService) admit(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusTooManyRequests, ErrorBody{
			Error:   "overloaded",
			Message: fmt.Sprintf("admission queue full (%d workers, %d queued); retry later", s.cfg.Workers, s.cfg.QueueDepth),
		})
		return false
	}
	s.queued.Add(1)
	defer func() { s.queued.Add(-1); s.waiting.Add(-1) }()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-s.drainCh:
		s.rejected.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: "draining", Message: "server is draining; retry elsewhere",
		})
		return false
	case <-r.Context().Done():
		// Client gave up while queued; nothing to write.
		s.count(httpStatusClientClosed)
		return false
	}
}

// httpStatusClientClosed is the nginx-convention 499 for "client closed
// request": nothing was written, the status only feeds the counters.
const httpStatusClientClosed = 499

func (s *CompileService) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.latency.Observe(time.Since(start).Nanoseconds()) }()

	if s.draining.Load() {
		s.rejected.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: "draining", Message: "server is draining; retry elsewhere",
		})
		return
	}
	// Register with the drain waitgroup, rechecking the flag after: a
	// drain that started between the check above and the Add must not
	// strand this request outside the wait.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		s.rejected.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: "draining", Message: "server is draining; retry elsewhere",
		})
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes))
	if err != nil {
		status := http.StatusBadRequest
		kind := "invalid"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
			kind = "too_large"
		}
		s.writeJSON(w, status, ErrorBody{Error: kind, Message: err.Error()})
		return
	}
	var req CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: "invalid", Message: "request body is not valid JSON: " + err.Error(),
		})
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: "invalid", Message: `request is missing "source"`,
		})
		return
	}
	conf, err := s.requestConfig(&req, r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "invalid", Message: err.Error()})
		return
	}

	if !s.admit(w, r) {
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	// The compile context dies with the client, and with the drain
	// kill switch once the drain deadline passes.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.killCtx, cancel)
	defer stop()

	if r.URL.Query().Get("trace") == "1" {
		s.compileStreaming(ctx, w, &req, conf)
		return
	}

	resp, err := s.compileOne(ctx, &req, conf)
	if err != nil {
		if r.Context().Err() != nil {
			// Client is gone; the write would be wasted. Count it as a
			// client-closed request, not a service failure.
			s.count(httpStatusClientClosed)
			return
		}
		status, body := classifyError(err)
		s.writeJSON(w, status, body)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// requestConfig assembles the effective Config for one request.
func (s *CompileService) requestConfig(req *CompileRequest, r *http.Request) (Config, error) {
	conf := DefaultConfig()
	if req.Config != nil {
		wc := req.Config
		conf = Config{
			Compress: wc.Compress, TimeSplit: wc.TimeSplit,
			SplitDelta: wc.SplitDelta, SplitPercent: wc.SplitPercent,
			BarrierExact: wc.BarrierExact, ExpandCalls: wc.ExpandCalls,
			CSI: wc.CSI, Hash: wc.Hash,
			MaxStates: wc.MaxStates, ConvertWorkers: wc.ConvertWorkers,
			Vet: wc.Vet, Opt: wc.Opt, Verify: wc.Verify,
		}
	}
	conf.Limits = s.cfg.DefaultLimits
	if req.Limits != nil {
		wl := req.Limits
		conf.Limits = Limits{
			Deadline:         time.Duration(wl.DeadlineMS) * time.Millisecond,
			MaxStates:        wl.MaxStates,
			MaxCSICandidates: wl.MaxCSICandidates,
			MaxMemBytes:      wl.MaxMemBytes,
		}
		// A service must keep its own ceiling: request limits may
		// tighten the defaults, never exceed them.
		if d := s.cfg.DefaultLimits.Deadline; d > 0 && (conf.Limits.Deadline <= 0 || conf.Limits.Deadline > d) {
			conf.Limits.Deadline = d
		}
		if m := s.cfg.DefaultLimits.MaxStates; m > 0 && (conf.Limits.MaxStates <= 0 || conf.Limits.MaxStates > m) {
			conf.Limits.MaxStates = m
		}
	}
	conf.Degrade = r.URL.Query().Get("degrade") == "1"
	conf.Metrics = s.rec
	conf.Cache = s.cfg.Cache
	if err := conf.Validate(); err != nil {
		return Config{}, err
	}
	if req.Run != nil {
		if e := req.Run.Engine; e != "" && e != "simd" && e != "mimd" && e != "interp" {
			return Config{}, fmt.Errorf("msc: run.engine must be simd, mimd, or interp, got %q", e)
		}
	}
	for _, e := range req.Emit {
		if e != "mpl" && e != "dot" {
			return Config{}, fmt.Errorf("msc: emit must be mpl or dot, got %q", e)
		}
	}
	return conf, nil
}

// compileOne runs one request through the pipeline (and the optional
// engine run) and shapes the response.
func (s *CompileService) compileOne(ctx context.Context, req *CompileRequest, conf Config) (*CompileResponse, error) {
	c, err := CompileContext(ctx, req.Source, conf)
	if err != nil {
		return nil, err
	}
	resp := &CompileResponse{
		MetaStates:   c.MetaStates(),
		MIMDStates:   c.MIMDStates(),
		Stats:        c.Stats,
		Diagnostics:  c.Diagnostics,
		Degradations: c.Degradations,
	}
	for _, e := range req.Emit {
		switch e {
		case "mpl":
			resp.MPL = c.MPL()
		case "dot":
			resp.Dot = c.DotAutomaton("automaton")
		}
	}
	if req.Run != nil {
		rr, err := s.runOne(ctx, c, req.Run, nil)
		if err != nil {
			return nil, err
		}
		resp.Run = rr
	}
	return resp, nil
}

// runOne executes the optional post-compile run. sink, when non-nil,
// receives the SIMD engine's typed trace events (the streaming path).
func (s *CompileService) runOne(ctx context.Context, c *Compiled, wr *WireRun, sink obs.Sink) (*RunResponse, error) {
	rc := RunConfig{N: wr.N, MaxSteps: wr.MaxSteps, Metrics: s.cfg.Registry}
	if rc.N <= 0 {
		rc.N = 16
	}
	engine := wr.Engine
	if engine == "" {
		engine = "simd"
	}
	var cycles int64
	switch engine {
	case "simd":
		rc.Sink = sink
		res, err := c.RunSIMDContext(ctx, rc)
		if err != nil {
			return nil, err
		}
		cycles = res.Time
	case "mimd":
		res, err := c.RunMIMDContext(ctx, rc)
		if err != nil {
			return nil, err
		}
		cycles = res.Time
	default:
		res, err := c.RunInterpContext(ctx, rc)
		if err != nil {
			return nil, err
		}
		cycles = res.Time
	}
	return &RunResponse{Engine: engine, N: rc.N, Cycles: cycles}, nil
}

// ---- trace streaming -----------------------------------------------

// lockedFlushWriter serializes writes from the span exporter goroutine
// and the handler, flushing each chunk so the client sees spans live.
type lockedFlushWriter struct {
	mu sync.Mutex
	w  io.Writer
	f  http.Flusher
}

func (l *lockedFlushWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, err := l.w.Write(p)
	if l.f != nil {
		l.f.Flush()
	}
	return n, err
}

// streamEnvelope frames the NDJSON stream: span lines carry the
// compile's span tree as it unfolds (telemetry JSONL span objects
// under "span"), event lines carry engine trace events, and the final
// line is exactly one of "done" or "fail".
type streamEnvelope struct {
	Span  json.RawMessage  `json:"span,omitempty"`
	Event json.RawMessage  `json:"event,omitempty"`
	Done  *CompileResponse `json:"done,omitempty"`
	Fail  *ErrorBody       `json:"fail,omitempty"`
}

// envelopeWriter wraps raw JSONL lines from the exporter/sink into
// stream envelopes under the given key.
type envelopeWriter struct {
	out io.Writer
	key string
}

func (e *envelopeWriter) Write(p []byte) (int, error) {
	line := strings.TrimRight(string(p), "\n")
	if line == "" {
		return len(p), nil
	}
	var env streamEnvelope
	switch e.key {
	case "span":
		env.Span = json.RawMessage(line)
	default:
		env.Event = json.RawMessage(line)
	}
	b, err := json.Marshal(env)
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	if _, err := e.out.Write(b); err != nil {
		return 0, err
	}
	return len(p), nil
}

// compileStreaming serves ?trace=1: an NDJSON stream of compile spans
// (and engine events when a run is requested), closed by a done/fail
// envelope. The HTTP status is always 200 — the outcome travels in the
// final envelope, as with any streaming protocol.
func (s *CompileService) compileStreaming(ctx context.Context, w http.ResponseWriter, req *CompileRequest, conf Config) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	out := &lockedFlushWriter{w: w, f: flusher}

	tracer := telemetry.NewTracer()
	exporter := telemetry.NewStreamExporter(tracer, &envelopeWriter{out: out, key: "span"})
	tracer.Exporter = exporter
	conf.Tracer = tracer

	c, err := CompileContext(ctx, req.Source, conf)
	var resp *CompileResponse
	if err == nil {
		resp = &CompileResponse{
			MetaStates:   c.MetaStates(),
			MIMDStates:   c.MIMDStates(),
			Stats:        c.Stats,
			Diagnostics:  c.Diagnostics,
			Degradations: c.Degradations,
		}
		for _, e := range req.Emit {
			switch e {
			case "mpl":
				resp.MPL = c.MPL()
			case "dot":
				resp.Dot = c.DotAutomaton("automaton")
			}
		}
		if req.Run != nil {
			sink := obs.NewSyncSink(&obs.JSONLSink{W: &envelopeWriter{out: out, key: "event"}})
			resp.Run, err = s.runOne(ctx, c, req.Run, sink)
		}
	}
	// Flush every span the compile produced before the final envelope,
	// so "done"/"fail" is genuinely the last line.
	exporter.Close()

	enc := json.NewEncoder(out)
	if err != nil {
		status, body := classifyError(err)
		enc.Encode(streamEnvelope{Fail: &body})
		s.count(status)
		return
	}
	enc.Encode(streamEnvelope{Done: resp})
	s.count(http.StatusOK)
}

// ---- health and introspection --------------------------------------

func (s *CompileService) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *CompileService) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// ServiceStatus is the GET /statusz body: a point-in-time snapshot of
// process and admission state (the load generator polls it for
// goroutine/RSS ceilings).
type ServiceStatus struct {
	Goroutines int   `json:"goroutines"`
	RSSBytes   int64 `json:"rss_bytes"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`
	Queued     int64 `json:"queued"`
	Draining   bool  `json:"draining"`
	Served     int64 `json:"served"`
	Status2xx  int64 `json:"status_2xx"`
	Status4xx  int64 `json:"status_4xx"`
	Status5xx  int64 `json:"status_5xx"`
	Rejected   int64 `json:"rejected"`
	// Cache is the artifact-cache snapshot, absent when the service
	// compiles uncached. The load generator's hit-ratio assertions read
	// these numbers.
	Cache *CacheStats `json:"cache,omitempty"`
}

func (s *CompileService) status() ServiceStatus {
	var cs *CacheStats
	if s.cfg.Cache != nil {
		snap := s.cfg.Cache.Stats()
		cs = &snap
	}
	return ServiceStatus{
		Cache:      cs,
		Goroutines: runtime.NumGoroutine(),
		RSSBytes:   readRSSBytes(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		InFlight:   s.inFlight.Value(),
		Queued:     s.queued.Value(),
		Draining:   s.draining.Load(),
		Served:     s.served.Load(),
		Status2xx:  s.byClass[2].Load(),
		Status4xx:  s.byClass[4].Load(),
		Status5xx:  s.byClass[5].Load(),
		Rejected:   s.rejected.Load(),
	}
}

func (s *CompileService) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(s.status())
}

// metricsHandler serves the registry in Prometheus form, refreshing
// the process gauges at scrape time.
func (s *CompileService) metricsHandler() http.Handler {
	reg := s.cfg.Registry
	goroutines := reg.Gauge("proc.goroutines", "live goroutines")
	rss := reg.Gauge("proc.rss_bytes", "resident set size (bytes)")
	inner := telemetry.Handler(reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		goroutines.Set(int64(runtime.NumGoroutine()))
		rss.Set(readRSSBytes())
		inner.ServeHTTP(w, r)
	})
}

// readRSSBytes reads the resident set size from /proc/self/statm
// (Linux); 0 where unavailable.
func readRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}
